#include "realm/fp/float_multiplier.hpp"

#include <bit>
#include <stdexcept>

#include "realm/multipliers/registry.hpp"
#include "realm/numeric/bits.hpp"

namespace realm::fp {
namespace {

constexpr int kFracBits = 23;
constexpr int kExpBits = 8;
constexpr std::uint32_t kExpMask = (1u << kExpBits) - 1;
constexpr std::uint32_t kFracMask = (1u << kFracBits) - 1;
constexpr std::uint32_t kQuietNan = 0x7FC00000u;

struct Fields {
  std::uint32_t sign;  // 0 or 1
  std::uint32_t exp;   // biased
  std::uint32_t frac;
};

Fields split(float f) {
  const auto bits = std::bit_cast<std::uint32_t>(f);
  return {bits >> 31, (bits >> kFracBits) & kExpMask, bits & kFracMask};
}

float assemble(std::uint32_t sign, std::uint32_t exp, std::uint32_t frac) {
  return std::bit_cast<float>((sign << 31) | (exp << kFracBits) | frac);
}

}  // namespace

ApproxFloatMultiplier::ApproxFloatMultiplier(std::unique_ptr<Multiplier> mantissa_core)
    : core_{std::move(mantissa_core)} {
  if (!core_) throw std::invalid_argument("ApproxFloatMultiplier: null core");
  if (core_->width() != kFracBits + 1) {
    throw std::invalid_argument(
        "ApproxFloatMultiplier: mantissa core must be 24 bits wide");
  }
}

ApproxFloatMultiplier ApproxFloatMultiplier::from_spec(const std::string& spec) {
  return ApproxFloatMultiplier{mult::make_multiplier(spec, kFracBits + 1)};
}

float ApproxFloatMultiplier::multiply(float a, float b) const {
  const Fields fa = split(a);
  const Fields fb = split(b);
  const std::uint32_t sign = fa.sign ^ fb.sign;

  // Special values.  Subnormals (exp == 0, frac != 0) flush to zero.
  const bool a_nan = fa.exp == kExpMask && fa.frac != 0;
  const bool b_nan = fb.exp == kExpMask && fb.frac != 0;
  const bool a_inf = fa.exp == kExpMask && fa.frac == 0;
  const bool b_inf = fb.exp == kExpMask && fb.frac == 0;
  const bool a_zero = fa.exp == 0;
  const bool b_zero = fb.exp == 0;
  if (a_nan || b_nan || (a_inf && b_zero) || (b_inf && a_zero)) {
    return std::bit_cast<float>(kQuietNan);
  }
  if (a_inf || b_inf) return assemble(sign, kExpMask, 0);
  if (a_zero || b_zero) return assemble(sign, 0, 0);

  // Significands with the implicit one: 24-bit values in [2^23, 2^24).
  const std::uint64_t ma = (std::uint64_t{1} << kFracBits) | fa.frac;
  const std::uint64_t mb = (std::uint64_t{1} << kFracBits) | fb.frac;
  const std::uint64_t product = core_->multiply(ma, mb);
  if (product == 0) return assemble(sign, 0, 0);  // pathological approximations

  // Normalize: the exact product has its leading one at bit 46 or 47;
  // approximate cores can land a bit outside that window (REALM's special
  // case 1), which the same shift handles.
  const int lead = num::leading_one(product);
  const std::int64_t exp =
      static_cast<std::int64_t>(fa.exp) + fb.exp - 127 + (lead - 2 * kFracBits);
  if (exp >= static_cast<std::int64_t>(kExpMask)) return assemble(sign, kExpMask, 0);
  if (exp <= 0) return assemble(sign, 0, 0);  // flush-to-zero underflow

  const std::uint32_t frac =
      static_cast<std::uint32_t>(product >> (lead - kFracBits)) & kFracMask;
  return assemble(sign, static_cast<std::uint32_t>(exp), frac);
}

}  // namespace realm::fp
