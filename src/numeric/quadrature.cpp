#include "realm/numeric/quadrature.hpp"

#include <cmath>

namespace realm::num {
namespace {

struct SimpsonState {
  const Fn1* f;
};

// One adaptive Simpson step: interval [a,b] with cached endpoint/midpoint
// values and the whole-interval Simpson estimate.
double adaptive(const Fn1& f, double a, double b, double fa, double fm, double fb,
                double whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double h = b - a;
  const double left = (h / 12.0) * (fa + 4.0 * flm + fm);
  const double right = (h / 12.0) * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;  // Richardson extrapolation
  }
  return adaptive(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1) +
         adaptive(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate(const Fn1& f, double a, double b, double tol) {
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = ((b - a) / 6.0) * (fa + 4.0 * fm + fb);
  return adaptive(f, a, b, fa, fm, fb, whole, tol, 50);
}

double integrate2d(const Fn2& f, double ax, double bx, double ay, double by,
                   double tol) {
  // Nested adaptive Simpson: the outer pass integrates the inner integral.
  // Inner tolerance is tightened relative to the outer so inner noise does
  // not masquerade as outer structure.
  const double inner_tol = tol * 1e-2;
  const Fn1 outer = [&](double x) {
    return integrate([&](double y) { return f(x, y); }, ay, by, inner_tol);
  };
  return integrate(outer, ax, bx, tol);
}

}  // namespace realm::num
