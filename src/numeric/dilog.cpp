#include "realm/numeric/dilog.hpp"

#include <cassert>
#include <cmath>

namespace realm::num {
namespace {

// Power series Σ x^k/k², valid (and fast) for |x| <= 0.5: 52 terms give
// 0.5^52 ≈ 2e-16 truncation, i.e. full double precision.
double dilog_series(double x) noexcept {
  double term = x;    // x^k
  double sum = x;     // k = 1
  for (int k = 2; k <= 60; ++k) {
    term *= x;
    const double add = term / (static_cast<double>(k) * static_cast<double>(k));
    sum += add;
    if (std::fabs(add) < 1e-18 * std::fabs(sum)) break;
  }
  return sum;
}

}  // namespace

double dilog(double x) noexcept {
  assert(x <= 1.0 + 1e-12 && "real dilogarithm requires x <= 1");
  if (x > 1.0) x = 1.0;

  if (x == 1.0) return kPiSquaredOver6;
  if (x == 0.0) return 0.0;

  // Landen-type argument reductions push |x| into [-0.5, 0.5] where the
  // series converges at full precision.
  if (x < -1.0) {
    // Li2(x) = -Li2(1/x) - π²/6 - ln²(-x)/2
    const double l = std::log(-x);
    return -dilog(1.0 / x) - kPiSquaredOver6 - 0.5 * l * l;
  }
  if (x < -0.5) {
    // Li2(x) = -Li2(x/(x-1)) - ln²(1-x)/2
    const double l = std::log1p(-x);
    return -dilog_series(x / (x - 1.0)) - 0.5 * l * l;
  }
  if (x <= 0.5) return dilog_series(x);

  // 0.5 < x < 1:  Li2(x) = π²/6 - ln(x)·ln(1-x) - Li2(1-x)
  return kPiSquaredOver6 - std::log(x) * std::log1p(-x) - dilog_series(1.0 - x);
}

}  // namespace realm::num
