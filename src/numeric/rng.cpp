#include "realm/numeric/rng.hpp"

#include <bit>

#include "realm/numeric/int128.hpp"

namespace realm::num {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  return splitmix64_mix(state += kSplitmix64Gamma);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  uint128 m = static_cast<uint128>((*this)()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<uint128>((*this)()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

}  // namespace realm::num
