#include "realm/numeric/thread_pool.hpp"

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "realm/obs/counters.hpp"
#include "realm/obs/histogram.hpp"
#include "realm/obs/trace.hpp"

namespace realm::num {

namespace {

// REALM_OBS_TEST_SLOWDOWN=<us>: sleeps that long after every task, inline or
// pooled.  CI's bench-history regression gate sets it to fake a hot-path
// regression and asserts realm_benchdiff catches it; unset (the only state
// outside that job) costs one cached-load branch per task.
std::uint64_t test_slowdown_us() noexcept {
  static const std::uint64_t v = [] {
    const char* s = std::getenv("REALM_OBS_TEST_SLOWDOWN");
    if (s == nullptr || *s == '\0') return std::uint64_t{0};
    char* end = nullptr;
    const unsigned long long n = std::strtoull(s, &end, 10);
    return end != nullptr && *end == '\0' ? std::uint64_t{n} : std::uint64_t{0};
  }();
  return v;
}

inline void maybe_inject_test_slowdown() {
  if (const std::uint64_t us = test_slowdown_us(); us != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds{us});
  }
}

}  // namespace

struct ThreadPool::Impl {
  // One "region" at a time: run() serializes callers via region_mutex_ (with
  // try_lock fallback to inline execution, see run()).  Workers claim task
  // indices from the shared atomic cursor, so load balancing is dynamic and
  // no per-task queue allocation is needed.
  std::mutex m;
  std::condition_variable work_ready;
  std::condition_variable region_done;
  std::vector<std::thread> threads;

  std::mutex region_mutex;  // serializes concurrent run() callers

  // Current region, valid while generation is odd-ended... simply guarded
  // by m; workers re-check generation to detect new regions.
  std::uint64_t generation = 0;
  std::size_t count = 0;
  unsigned helpers_wanted = 0;
  const std::function<void(std::size_t)>* task = nullptr;
  std::atomic<std::size_t> cursor{0};
  unsigned active = 0;
  std::uint64_t region_start_ns = 0;  // publish time, for queue-wait telemetry
  std::uint64_t region_trace_rid = 0;  // caller's request id, adopted by helpers
  std::exception_ptr first_error;
  bool stop = false;

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock lock{m};
    for (;;) {
      work_ready.wait(lock, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      if (helpers_wanted == 0) continue;  // region already fully staffed
      --helpers_wanted;
      ++active;
      obs::gauge_set(obs::Gauge::kPoolActiveWorkers, active);
      // Dispatch latency: time from the caller publishing the region to this
      // worker starting on it (still under m, so region_start_ns is stable).
      // The histogram carries the distribution (p50/p95/p99 of worker
      // wake-up); the summed counter stays as its backward-compatible total.
      const std::uint64_t wait_ns = obs::now_ns() - region_start_ns;
      obs::counter_add(obs::Counter::kPoolQueueWaitNs, wait_ns);
      obs::value_hist_record(obs::ValueHist::kPoolQueueWaitNs, wait_ns);
      const std::uint64_t rid = region_trace_rid;  // stable while m is held
      lock.unlock();
      {
        // Helpers adopt the publishing caller's trace context so pool/task
        // spans inside a served request carry its request id.
        obs::ScopedTraceContext ctx{rid};
        drain();
      }
      lock.lock();
      --active;
      obs::gauge_set(obs::Gauge::kPoolActiveWorkers, active);
      if (active == 0) region_done.notify_all();
    }
  }

  // Claims and runs tasks until the region is exhausted.  Called without
  // holding m.
  void drain() {
    const std::size_t n = count;
    const auto* fn = task;
    std::uint64_t executed = 0;
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      // Occupancy gauge for the sampler: tasks are block-granularity, so one
      // relaxed store per claim is noise next to the work itself.
      obs::gauge_set(obs::Gauge::kPoolQueueDepth,
                     n - i > 1 ? static_cast<std::uint64_t>(n - i - 1) : 0);
      ++executed;
      REALM_TRACE_SCOPE("pool/task");
      maybe_inject_test_slowdown();
      try {
        (*fn)(i);
      } catch (...) {
        obs::counter_add(obs::Counter::kPoolTasksFailed, 1);
        std::lock_guard lock{m};
        // Only the first exception propagates to the caller; any further one
        // is swallowed here.  That silent-loss path has hidden bugs inside
        // instrumented regions before, so debug builds make it loud.
        assert(first_error == nullptr &&
               "ThreadPool task threw while another failure was already "
               "pending; this exception would be silently swallowed");
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (executed != 0) {
      obs::counter_add(obs::Counter::kPoolTasksExecuted, executed);
    }
  }
};

ThreadPool::ThreadPool(unsigned workers) : impl_{new Impl} {
  impl_->threads.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
  }
  obs::gauge_set(obs::Gauge::kPoolWorkers, workers);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{impl_->m};
    impl_->stop = true;
  }
  impl_->work_ready.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

unsigned ThreadPool::workers() const noexcept {
  return static_cast<unsigned>(impl_->threads.size());
}

void ThreadPool::run(std::size_t count, unsigned parallelism,
                     const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (parallelism == 0) parallelism = workers() + 1;

  // Inline paths: nothing to parallelize, or the pool is busy serving
  // another caller (including a task on this pool calling run() again —
  // running inline keeps that deadlock-free).
  std::unique_lock region{impl_->region_mutex, std::try_to_lock};
  if (parallelism <= 1 || count <= 1 || workers() == 0 || !region.owns_lock()) {
    // The contention fallback (a parallel request degraded to serial because
    // the pool was busy) used to be invisible; count it so saturated nests
    // show up in the bench counters.
    if (!region.owns_lock() && parallelism > 1 && count > 1 && workers() != 0) {
      obs::counter_add(obs::Counter::kPoolTasksInline, count);
    }
    for (std::size_t i = 0; i < count; ++i) {
      REALM_TRACE_SCOPE("pool/task");
      maybe_inject_test_slowdown();
      task(i);
    }
    obs::counter_add(obs::Counter::kPoolTasksExecuted, count);
    return;
  }

  obs::counter_add(obs::Counter::kPoolRegions, 1);
  {
    std::lock_guard lock{impl_->m};
    impl_->count = count;
    impl_->task = &task;
    impl_->cursor.store(0, std::memory_order_relaxed);
    impl_->first_error = nullptr;
    const auto max_helpers = static_cast<unsigned>(impl_->threads.size());
    impl_->helpers_wanted = std::min(parallelism - 1, max_helpers);
    impl_->region_start_ns = obs::now_ns();
    impl_->region_trace_rid = obs::current_trace_rid();
    ++impl_->generation;
  }
  impl_->work_ready.notify_all();

  impl_->drain();  // the caller is a full participant

  std::unique_lock lock{impl_->m};
  impl_->region_done.wait(lock, [&] { return impl_->active == 0; });
  impl_->helpers_wanted = 0;  // late wakers must not join a finished region
  impl_->task = nullptr;
  if (impl_->first_error) std::rethrow_exception(impl_->first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool{[] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0;
  }()};
  return pool;
}

}  // namespace realm::num
