#include "realm/numeric/thread_pool.hpp"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "realm/obs/counters.hpp"
#include "realm/obs/trace.hpp"

namespace realm::num {

struct ThreadPool::Impl {
  // One "region" at a time: run() serializes callers via region_mutex_ (with
  // try_lock fallback to inline execution, see run()).  Workers claim task
  // indices from the shared atomic cursor, so load balancing is dynamic and
  // no per-task queue allocation is needed.
  std::mutex m;
  std::condition_variable work_ready;
  std::condition_variable region_done;
  std::vector<std::thread> threads;

  std::mutex region_mutex;  // serializes concurrent run() callers

  // Current region, valid while generation is odd-ended... simply guarded
  // by m; workers re-check generation to detect new regions.
  std::uint64_t generation = 0;
  std::size_t count = 0;
  unsigned helpers_wanted = 0;
  const std::function<void(std::size_t)>* task = nullptr;
  std::atomic<std::size_t> cursor{0};
  unsigned active = 0;
  std::uint64_t region_start_ns = 0;  // publish time, for queue-wait telemetry
  std::exception_ptr first_error;
  bool stop = false;

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock lock{m};
    for (;;) {
      work_ready.wait(lock, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      if (helpers_wanted == 0) continue;  // region already fully staffed
      --helpers_wanted;
      ++active;
      // Dispatch latency: time from the caller publishing the region to this
      // worker starting on it (still under m, so region_start_ns is stable).
      obs::counter_add(obs::Counter::kPoolQueueWaitNs,
                       obs::now_ns() - region_start_ns);
      lock.unlock();
      drain();
      lock.lock();
      if (--active == 0) region_done.notify_all();
    }
  }

  // Claims and runs tasks until the region is exhausted.  Called without
  // holding m.
  void drain() {
    const std::size_t n = count;
    const auto* fn = task;
    std::uint64_t executed = 0;
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      ++executed;
      REALM_TRACE_SCOPE("pool/task");
      try {
        (*fn)(i);
      } catch (...) {
        obs::counter_add(obs::Counter::kPoolTasksFailed, 1);
        std::lock_guard lock{m};
        // Only the first exception propagates to the caller; any further one
        // is swallowed here.  That silent-loss path has hidden bugs inside
        // instrumented regions before, so debug builds make it loud.
        assert(first_error == nullptr &&
               "ThreadPool task threw while another failure was already "
               "pending; this exception would be silently swallowed");
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (executed != 0) {
      obs::counter_add(obs::Counter::kPoolTasksExecuted, executed);
    }
  }
};

ThreadPool::ThreadPool(unsigned workers) : impl_{new Impl} {
  impl_->threads.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
  }
  obs::gauge_set(obs::Gauge::kPoolWorkers, workers);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{impl_->m};
    impl_->stop = true;
  }
  impl_->work_ready.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

unsigned ThreadPool::workers() const noexcept {
  return static_cast<unsigned>(impl_->threads.size());
}

void ThreadPool::run(std::size_t count, unsigned parallelism,
                     const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (parallelism == 0) parallelism = workers() + 1;

  // Inline paths: nothing to parallelize, or the pool is busy serving
  // another caller (including a task on this pool calling run() again —
  // running inline keeps that deadlock-free).
  std::unique_lock region{impl_->region_mutex, std::try_to_lock};
  if (parallelism <= 1 || count <= 1 || workers() == 0 || !region.owns_lock()) {
    // The contention fallback (a parallel request degraded to serial because
    // the pool was busy) used to be invisible; count it so saturated nests
    // show up in the bench counters.
    if (!region.owns_lock() && parallelism > 1 && count > 1 && workers() != 0) {
      obs::counter_add(obs::Counter::kPoolTasksInline, count);
    }
    for (std::size_t i = 0; i < count; ++i) {
      REALM_TRACE_SCOPE("pool/task");
      task(i);
    }
    obs::counter_add(obs::Counter::kPoolTasksExecuted, count);
    return;
  }

  obs::counter_add(obs::Counter::kPoolRegions, 1);
  {
    std::lock_guard lock{impl_->m};
    impl_->count = count;
    impl_->task = &task;
    impl_->cursor.store(0, std::memory_order_relaxed);
    impl_->first_error = nullptr;
    const auto max_helpers = static_cast<unsigned>(impl_->threads.size());
    impl_->helpers_wanted = std::min(parallelism - 1, max_helpers);
    impl_->region_start_ns = obs::now_ns();
    ++impl_->generation;
  }
  impl_->work_ready.notify_all();

  impl_->drain();  // the caller is a full participant

  std::unique_lock lock{impl_->m};
  impl_->region_done.wait(lock, [&] { return impl_->active == 0; });
  impl_->helpers_wanted = 0;  // late wakers must not join a finished region
  impl_->task = nullptr;
  if (impl_->first_error) std::rethrow_exception(impl_->first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool{[] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0;
  }()};
  return pool;
}

}  // namespace realm::num
