#include "realm/numeric/fixed_point.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>

namespace realm::num {

std::int64_t signed_mul(std::int64_t a, std::int64_t b, const UMulFn& umul) {
  const bool neg = (a < 0) != (b < 0);
  const auto ua = static_cast<std::uint64_t>(a < 0 ? -a : a);
  const auto ub = static_cast<std::uint64_t>(b < 0 ? -b : b);
  const auto p = static_cast<std::int64_t>(umul(ua, ub));
  return neg ? -p : p;
}

std::int32_t fx_mul(std::int32_t a, std::int32_t b, int frac_bits, const UMulFn& umul) {
  assert(frac_bits >= 0 && frac_bits < 32);
  const std::int64_t p = signed_mul(a, b, umul);
  // Arithmetic shift of the magnitude: truncation toward zero matches a
  // hardware right-shift of the unsigned product before sign re-application.
  const std::int64_t q = (p < 0) ? -((-p) >> frac_bits) : (p >> frac_bits);
  return static_cast<std::int32_t>(q);
}

std::int32_t to_fx(double v, int frac_bits) {
  return static_cast<std::int32_t>(std::lround(v * std::ldexp(1.0, frac_bits)));
}

double from_fx(std::int32_t v, int frac_bits) {
  return static_cast<double>(v) * std::ldexp(1.0, -frac_bits);
}

std::int32_t sat_signed(std::int64_t v, int n) {
  assert(n >= 2 && n <= 32);
  const std::int64_t hi = (std::int64_t{1} << (n - 1)) - 1;
  const std::int64_t lo = -(std::int64_t{1} << (n - 1));
  if (v > hi) return static_cast<std::int32_t>(hi);
  if (v < lo) return static_cast<std::int32_t>(lo);
  return static_cast<std::int32_t>(v);
}

}  // namespace realm::num
