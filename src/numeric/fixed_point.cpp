#include "realm/numeric/fixed_point.hpp"

#include <cassert>
#include <climits>
#include <cmath>
#include <cstdlib>

#include "realm/multiplier.hpp"

namespace realm::num {

namespace {

// Stack-block size for the batched tiers: big enough that the devirtualized
// kernels amortize their per-call setup, small enough that three blocks
// (magnitudes x2 + products) stay L1-resident alongside the caller's lanes.
constexpr std::size_t kBlock = 512;

}  // namespace

std::int64_t signed_mul(std::int64_t a, std::int64_t b, const UMulFn& umul) {
  assert(a != INT64_MIN && b != INT64_MIN && "signed_mul: |INT64_MIN| overflows");
  const bool neg = (a < 0) != (b < 0);
  const auto ua = static_cast<std::uint64_t>(a < 0 ? -a : a);
  const auto ub = static_cast<std::uint64_t>(b < 0 ? -b : b);
  const auto p = static_cast<std::int64_t>(umul(ua, ub));
  return neg ? -p : p;
}

void signed_mul_batch(const std::int64_t* a, const std::int64_t* b, std::int64_t* out,
                      std::size_t n, const Multiplier& mul) {
  std::uint64_t ua[kBlock], ub[kBlock], prod[kBlock];
  for (std::size_t i0 = 0; i0 < n; i0 += kBlock) {
    const std::size_t len = n - i0 < kBlock ? n - i0 : kBlock;
    for (std::size_t i = 0; i < len; ++i) {
      const std::int64_t av = a[i0 + i];
      const std::int64_t bv = b[i0 + i];
      assert(av != INT64_MIN && bv != INT64_MIN &&
             "signed_mul_batch: |INT64_MIN| overflows");
      ua[i] = static_cast<std::uint64_t>(av < 0 ? -av : av);
      ub[i] = static_cast<std::uint64_t>(bv < 0 ? -bv : bv);
    }
    mul.multiply_batch(ua, ub, prod, len);
    for (std::size_t i = 0; i < len; ++i) {
      const auto p = static_cast<std::int64_t>(prod[i]);
      out[i0 + i] = (a[i0 + i] < 0) != (b[i0 + i] < 0) ? -p : p;
    }
  }
}

void signed_row_batch(std::int64_t a_fixed, const std::int64_t* b, std::int64_t* out,
                      std::size_t n, const Multiplier& mul) {
  assert(a_fixed != INT64_MIN && "signed_row_batch: |INT64_MIN| overflows");
  const bool a_neg = a_fixed < 0;
  const auto ua = static_cast<std::uint64_t>(a_neg ? -a_fixed : a_fixed);
  std::uint64_t ub[kBlock], prod[kBlock];
  for (std::size_t i0 = 0; i0 < n; i0 += kBlock) {
    const std::size_t len = n - i0 < kBlock ? n - i0 : kBlock;
    for (std::size_t i = 0; i < len; ++i) {
      const std::int64_t bv = b[i0 + i];
      assert(bv != INT64_MIN && "signed_row_batch: |INT64_MIN| overflows");
      ub[i] = static_cast<std::uint64_t>(bv < 0 ? -bv : bv);
    }
    mul.multiply_row_batch(ua, ub, prod, len);
    for (std::size_t i = 0; i < len; ++i) {
      const auto p = static_cast<std::int64_t>(prod[i]);
      out[i0 + i] = (b[i0 + i] < 0) != a_neg ? -p : p;
    }
  }
}

std::int32_t fx_mul(std::int32_t a, std::int32_t b, int frac_bits, const UMulFn& umul) {
  assert(frac_bits >= 0 && frac_bits < 32);
  const std::int64_t p = signed_mul(a, b, umul);
  // Arithmetic shift of the magnitude: truncation toward zero matches a
  // hardware right-shift of the unsigned product before sign re-application.
  const std::int64_t q = (p < 0) ? -((-p) >> frac_bits) : (p >> frac_bits);
  return static_cast<std::int32_t>(q);
}

std::int32_t to_fx(double v, int frac_bits) {
  return static_cast<std::int32_t>(std::lround(v * std::ldexp(1.0, frac_bits)));
}

double from_fx(std::int32_t v, int frac_bits) {
  return static_cast<double>(v) * std::ldexp(1.0, -frac_bits);
}

std::int32_t sat_signed(std::int64_t v, int n) {
  assert(n >= 2 && n <= 32);
  const std::int64_t hi = (std::int64_t{1} << (n - 1)) - 1;
  const std::int64_t lo = -(std::int64_t{1} << (n - 1));
  if (v > hi) return static_cast<std::int32_t>(hi);
  if (v < lo) return static_cast<std::int32_t>(lo);
  return static_cast<std::int32_t>(v);
}

}  // namespace realm::num
