#include "realm/jpeg/quality.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace realm::jpeg {

double mse(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("mse: image size mismatch");
  }
  if (a.pixels().empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    const double d = static_cast<double>(a.pixels()[i]) - static_cast<double>(b.pixels()[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(a.pixels().size());
}

double psnr(const Image& a, const Image& b) {
  const double m = mse(a, b);
  if (m == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / m);
}

}  // namespace realm::jpeg
