#include "realm/jpeg/huffman.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace realm::jpeg {

void BitWriter::put(std::uint32_t value, int bits) {
  if (bits < 0 || bits > 32) throw std::invalid_argument("BitWriter::put: bits");
  for (int i = bits - 1; i >= 0; --i) {
    acc_ = (acc_ << 1) | ((value >> i) & 1u);
    if (++acc_bits_ == 8) {
      bytes_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      acc_bits_ = 0;
    }
  }
  bit_count_ += static_cast<std::size_t>(bits);
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (acc_bits_ > 0) {
    bytes_.push_back(static_cast<std::uint8_t>(acc_ << (8 - acc_bits_)));
    acc_ = 0;
    acc_bits_ = 0;
  }
  return std::move(bytes_);
}

BitReader::BitReader(const std::vector<std::uint8_t>& bytes) : bytes_{&bytes} {}

int BitReader::get_bit() {
  const std::size_t byte = pos_ >> 3;
  if (byte >= bytes_->size()) throw std::runtime_error("BitReader: past end");
  const int bit = ((*bytes_)[byte] >> (7 - (pos_ & 7))) & 1;
  ++pos_;
  return bit;
}

std::uint32_t BitReader::get(int bits) {
  std::uint32_t v = 0;
  for (int i = 0; i < bits; ++i) v = (v << 1) | static_cast<std::uint32_t>(get_bit());
  return v;
}

namespace {
constexpr int kMaxLen = 16;
}

HuffmanCode HuffmanCode::from_frequencies(const std::vector<std::uint64_t>& freq) {
  HuffmanCode hc;
  hc.lengths_.assign(freq.size(), 0);

  // Package-merge would be optimal; a plain Huffman tree with the JPEG
  // length-limiting adjustment is standard practice and what we use.
  struct Node {
    std::uint64_t w;
    int sym;  // >= 0 leaf, -1 internal
    int l, r;
  };
  std::vector<Node> nodes;
  using QE = std::pair<std::uint64_t, int>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] > 0) {
      nodes.push_back({freq[s], static_cast<int>(s), -1, -1});
      pq.emplace(freq[s], static_cast<int>(nodes.size() - 1));
    }
  }
  if (nodes.empty()) {
    hc.assign_codes();
    return hc;
  }
  if (nodes.size() == 1) {
    hc.lengths_[static_cast<std::size_t>(nodes[0].sym)] = 1;
    hc.assign_codes();
    return hc;
  }
  while (pq.size() > 1) {
    const auto [wa, ia] = pq.top();
    pq.pop();
    const auto [wb, ib] = pq.top();
    pq.pop();
    nodes.push_back({wa + wb, -1, ia, ib});
    pq.emplace(wa + wb, static_cast<int>(nodes.size() - 1));
  }
  // Depth-first length assignment.
  std::vector<std::pair<int, int>> stack{{pq.top().second, 0}};
  while (!stack.empty()) {
    const auto [ni, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes[static_cast<std::size_t>(ni)];
    if (nd.sym >= 0) {
      hc.lengths_[static_cast<std::size_t>(nd.sym)] =
          static_cast<std::uint8_t>(std::max(depth, 1));
    } else {
      stack.emplace_back(nd.l, depth + 1);
      stack.emplace_back(nd.r, depth + 1);
    }
  }

  // Length-limit to kMaxLen: repeatedly shorten the deepest pair by moving a
  // leaf down next to a shallower one (JPEG Annex K style "adjust_bits").
  std::vector<int> count(static_cast<std::size_t>(kMaxLen + 32), 0);
  for (const auto l : hc.lengths_) {
    if (l > 0) ++count[l];
  }
  for (int len = static_cast<int>(count.size()) - 1; len > kMaxLen; --len) {
    while (count[static_cast<std::size_t>(len)] > 0) {
      int shorter = len - 2;
      while (shorter > 0 && count[static_cast<std::size_t>(shorter)] == 0) --shorter;
      count[static_cast<std::size_t>(len)] -= 2;
      count[static_cast<std::size_t>(len - 1)] += 1;
      count[static_cast<std::size_t>(shorter + 1)] += 2;
      count[static_cast<std::size_t>(shorter)] -= 1;
    }
  }
  // Re-distribute the adjusted lengths over symbols sorted by frequency
  // (most frequent gets the shortest length).
  std::vector<int> symbols;
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] > 0) symbols.push_back(static_cast<int>(s));
  }
  std::sort(symbols.begin(), symbols.end(), [&](int x, int y) {
    return freq[static_cast<std::size_t>(x)] > freq[static_cast<std::size_t>(y)];
  });
  std::vector<std::uint8_t> new_lengths(hc.lengths_.size(), 0);
  std::size_t si = 0;
  for (int len = 1; len <= kMaxLen; ++len) {
    for (int c = 0; c < count[static_cast<std::size_t>(len)]; ++c) {
      new_lengths[static_cast<std::size_t>(symbols.at(si++))] =
          static_cast<std::uint8_t>(len);
    }
  }
  hc.lengths_ = std::move(new_lengths);
  hc.assign_codes();
  return hc;
}

HuffmanCode HuffmanCode::from_lengths(const std::vector<std::uint8_t>& lengths) {
  HuffmanCode hc;
  hc.lengths_ = lengths;
  hc.assign_codes();
  return hc;
}

void HuffmanCode::assign_codes() {
  codes_.assign(lengths_.size(), 0);
  first_code_.assign(kMaxLen + 2, 0);
  first_index_.assign(kMaxLen + 2, 0);
  sorted_symbols_.clear();

  // Canonical order: by (length, symbol).
  std::vector<int> order;
  for (std::size_t s = 0; s < lengths_.size(); ++s) {
    if (lengths_[s] > 0) order.push_back(static_cast<int>(s));
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto la = lengths_[static_cast<std::size_t>(a)];
    const auto lb = lengths_[static_cast<std::size_t>(b)];
    return la != lb ? la < lb : a < b;
  });

  std::uint32_t code = 0;
  int prev_len = 0;
  std::uint32_t index = 0;
  for (const int sym : order) {
    const int len = lengths_[static_cast<std::size_t>(sym)];
    code <<= (len - prev_len);
    if (prev_len != len) {
      first_code_[static_cast<std::size_t>(len)] = code;
      first_index_[static_cast<std::size_t>(len)] = index;
    }
    codes_[static_cast<std::size_t>(sym)] = code;
    sorted_symbols_.push_back(sym);
    ++code;
    ++index;
    prev_len = len;
    // Track the first code of each length even when lengths are skipped.
  }
  // Fill first_code for lengths with no symbols so decode can skip them:
  // recompute cumulatively.
  std::uint32_t c = 0;
  std::uint32_t idx = 0;
  len_count_.assign(kMaxLen + 2, 0);
  for (const auto l : lengths_) {
    if (l > 0) ++len_count_[l];
  }
  for (int len = 1; len <= kMaxLen; ++len) {
    first_code_[static_cast<std::size_t>(len)] = c;
    first_index_[static_cast<std::size_t>(len)] = idx;
    c = (c + len_count_[static_cast<std::size_t>(len)]) << 1;
    idx += len_count_[static_cast<std::size_t>(len)];
  }
}

void HuffmanCode::encode(BitWriter& w, int symbol) const {
  const auto s = static_cast<std::size_t>(symbol);
  if (s >= lengths_.size() || lengths_[s] == 0) {
    throw std::invalid_argument("HuffmanCode::encode: symbol has no code");
  }
  w.put(codes_[s], lengths_[s]);
}

int HuffmanCode::decode(BitReader& r) const {
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxLen; ++len) {
    code = (code << 1) | static_cast<std::uint32_t>(r.get_bit());
    const std::uint32_t n = len_count_[static_cast<std::size_t>(len)];
    if (n != 0 && code - first_code_[static_cast<std::size_t>(len)] < n) {
      const std::uint32_t idx = first_index_[static_cast<std::size_t>(len)] +
                                (code - first_code_[static_cast<std::size_t>(len)]);
      return sorted_symbols_.at(idx);
    }
  }
  throw std::runtime_error("HuffmanCode::decode: invalid code");
}

}  // namespace realm::jpeg
