#include "realm/jpeg/color.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "realm/jpeg/quant.hpp"
#include "realm/jpeg/synthetic.hpp"

namespace realm::jpeg {
namespace {

std::uint8_t clamp8(int v) { return static_cast<std::uint8_t>(std::clamp(v, 0, 255)); }

// BT.601 full-range coefficients in Q16.
constexpr int kYr = 19595, kYg = 38470, kYb = 7471;          // 0.299/0.587/0.114
constexpr int kCbR = -11059, kCbG = -21709, kCbB = 32768;    // -0.1687/-0.3313/0.5
constexpr int kCrR = 32768, kCrG = -27439, kCrB = -5329;     // 0.5/-0.4187/-0.0813
constexpr int kRCr = 91881;                                  // 1.402
constexpr int kGCb = -22554, kGCr = -46802;                  // -0.3441/-0.7141
constexpr int kBCb = 116130;                                 // 1.772
constexpr int kHalf = 1 << 15;

}  // namespace

ColorImage::ColorImage(int width, int height) : width_{width}, height_{height} {
  if (width < 0 || height < 0) throw std::invalid_argument("ColorImage: negative size");
  pixels_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height) * 3, 0);
}

std::array<std::uint8_t, 3> ColorImage::at(int x, int y) const {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) throw std::out_of_range("ColorImage");
  const std::size_t base =
      (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
       static_cast<std::size_t>(x)) * 3;
  return {pixels_[base], pixels_[base + 1], pixels_[base + 2]};
}

void ColorImage::set(int x, int y, std::uint8_t r, std::uint8_t g, std::uint8_t b) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) throw std::out_of_range("ColorImage");
  const std::size_t base =
      (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
       static_cast<std::size_t>(x)) * 3;
  pixels_[base] = r;
  pixels_[base + 1] = g;
  pixels_[base + 2] = b;
}

void write_ppm(const ColorImage& img, const std::string& path) {
  std::ofstream os{path, std::ios::binary};
  if (!os) throw std::runtime_error("write_ppm: cannot open " + path);
  os << "P6\n" << img.width() << ' ' << img.height() << "\n255\n";
  os.write(reinterpret_cast<const char*>(img.pixels().data()),
           static_cast<std::streamsize>(img.pixels().size()));
  if (!os) throw std::runtime_error("write_ppm: write failed for " + path);
}

ColorImage read_ppm(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw std::runtime_error("read_ppm: cannot open " + path);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  is >> magic >> w >> h >> maxval;
  if (magic != "P6" || !is || w <= 0 || h <= 0 || maxval != 255) {
    throw std::runtime_error("read_ppm: bad header in " + path);
  }
  is.get();
  ColorImage img{w, h};
  std::vector<std::uint8_t> raster(static_cast<std::size_t>(w) *
                                   static_cast<std::size_t>(h) * 3);
  is.read(reinterpret_cast<char*>(raster.data()),
          static_cast<std::streamsize>(raster.size()));
  if (!is) throw std::runtime_error("read_ppm: truncated raster in " + path);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::size_t base =
          (static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
           static_cast<std::size_t>(x)) * 3;
      img.set(x, y, raster[base], raster[base + 1], raster[base + 2]);
    }
  }
  return img;
}

YCbCrPlanes rgb_to_ycbcr420(const ColorImage& img) {
  if (img.width() % 2 != 0 || img.height() % 2 != 0) {
    throw std::invalid_argument("rgb_to_ycbcr420: even dimensions required");
  }
  YCbCrPlanes out;
  out.y = Image{img.width(), img.height()};
  out.cb = Image{img.width() / 2, img.height() / 2};
  out.cr = Image{img.width() / 2, img.height() / 2};

  // Full-resolution chroma first, then box-filtered 2×2 to 4:2:0.
  for (int cy = 0; cy < img.height() / 2; ++cy) {
    for (int cx = 0; cx < img.width() / 2; ++cx) {
      int cb_acc = 0, cr_acc = 0;
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          const int x = 2 * cx + dx, y = 2 * cy + dy;
          const auto [r, g, b] = img.at(x, y);
          out.y.set(x, y, clamp8((kYr * r + kYg * g + kYb * b + kHalf) >> 16));
          cb_acc += 128 + ((kCbR * r + kCbG * g + kCbB * b + kHalf) >> 16);
          cr_acc += 128 + ((kCrR * r + kCrG * g + kCrB * b + kHalf) >> 16);
        }
      }
      out.cb.set(cx, cy, clamp8((cb_acc + 2) / 4));
      out.cr.set(cx, cy, clamp8((cr_acc + 2) / 4));
    }
  }
  return out;
}

ColorImage ycbcr420_to_rgb(const YCbCrPlanes& planes) {
  ColorImage img{planes.y.width(), planes.y.height()};
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const int yy = planes.y.at(x, y);
      const int cb = planes.cb.at(x / 2, y / 2) - 128;
      const int cr = planes.cr.at(x / 2, y / 2) - 128;
      img.set(x, y, clamp8(yy + ((kRCr * cr + kHalf) >> 16)),
              clamp8(yy + ((kGCb * cb + kGCr * cr + kHalf) >> 16)),
              clamp8(yy + ((kBCb * cb + kHalf) >> 16)));
    }
  }
  return img;
}

const std::array<std::uint16_t, 64>& base_chrominance_table() {
  static const std::array<std::uint16_t, 64> table{
      17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
      24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
      99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
      99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};
  return table;
}

std::array<std::uint16_t, 64> scaled_chroma_table(int quality) {
  if (quality < 1 || quality > 100) throw std::invalid_argument("quality in [1, 100]");
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<std::uint16_t, 64> out{};
  const auto& base = base_chrominance_table();
  for (std::size_t i = 0; i < 64; ++i) {
    const int v = (base[i] * scale + 50) / 100;
    out[i] = static_cast<std::uint16_t>(std::clamp(v, 1, 255));
  }
  return out;
}

CompressedColor encode_color(const ColorImage& img, const CodecOptions& opts) {
  if (img.width() % 16 != 0 || img.height() % 16 != 0) {
    throw std::invalid_argument("encode_color: dimensions must be multiples of 16");
  }
  const YCbCrPlanes planes = rgb_to_ycbcr420(img);
  CompressedColor out;
  out.y = encode_plane(planes.y, scaled_table(opts.quality), opts);
  const auto chroma_q = scaled_chroma_table(opts.quality);
  out.cb = encode_plane(planes.cb, chroma_q, opts);
  out.cr = encode_plane(planes.cr, chroma_q, opts);
  return out;
}

ColorImage decode_color(const CompressedColor& c, const CodecOptions& opts) {
  YCbCrPlanes planes;
  planes.y = decode_plane(c.y, scaled_table(c.y.quality), opts);
  const auto chroma_q = scaled_chroma_table(c.cb.quality);
  planes.cb = decode_plane(c.cb, chroma_q, opts);
  planes.cr = decode_plane(c.cr, chroma_q, opts);
  return ycbcr420_to_rgb(planes);
}

ColorImage roundtrip_color(const ColorImage& img, const CodecOptions& opts) {
  return decode_color(encode_color(img, opts), opts);
}

double psnr_color(const ColorImage& a, const ColorImage& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("psnr_color: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    const double d =
        static_cast<double>(a.pixels()[i]) - static_cast<double>(b.pixels()[i]);
    acc += d * d;
  }
  const double mse = acc / static_cast<double>(a.pixels().size());
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

ColorImage synthetic_color_scene(int size) {
  // Colorize the livingroom scene: warm walls, cool window light, a red rug
  // band and a green plant blob — deterministic by construction.
  const Image base = synthetic_livingroom(size);
  ColorImage img{size, size};
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      const int v = base.at(x, y);
      const double fx = (x + 0.5) / size, fy = (y + 0.5) / size;
      int r = v + static_cast<int>(18.0 * (1.0 - fy));   // warm top light
      int g = v;
      int b = v + static_cast<int>(22.0 * fx - 8.0);     // cool toward the right
      if (fy > 0.74) {                                   // red-ish rug
        r += 36;
        b -= 18;
      }
      if (fx > 0.86 && fy > 0.45 && fy < 0.68) {         // green plant
        g += 42;
        r -= 12;
      }
      img.set(x, y, clamp8(r), clamp8(g), clamp8(b));
    }
  }
  return img;
}

}  // namespace realm::jpeg
