#include "realm/jpeg/image.hpp"

#include <fstream>
#include <stdexcept>

namespace realm::jpeg {

Image::Image(int width, int height, std::uint8_t fill)
    : width_{width}, height_{height} {
  if (width < 0 || height < 0) throw std::invalid_argument("Image: negative size");
  pixels_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
                 fill);
}

std::uint8_t Image::at(int x, int y) const {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    throw std::out_of_range("Image::at");
  }
  return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
}

void Image::set(int x, int y, std::uint8_t v) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    throw std::out_of_range("Image::set");
  }
  pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
          static_cast<std::size_t>(x)] = v;
}

void write_pgm(const Image& img, const std::string& path) {
  std::ofstream os{path, std::ios::binary};
  if (!os) throw std::runtime_error("write_pgm: cannot open " + path);
  os << "P5\n" << img.width() << ' ' << img.height() << "\n255\n";
  os.write(reinterpret_cast<const char*>(img.pixels().data()),
           static_cast<std::streamsize>(img.pixels().size()));
  if (!os) throw std::runtime_error("write_pgm: write failed for " + path);
}

Image read_pgm(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw std::runtime_error("read_pgm: cannot open " + path);
  std::string magic;
  is >> magic;
  if (magic != "P5") throw std::runtime_error("read_pgm: not a binary PGM: " + path);
  int w = 0, h = 0, maxval = 0;
  // Skip comments between header tokens.
  const auto next_int = [&](int& out) {
    while (is >> std::ws && is.peek() == '#') {
      std::string line;
      std::getline(is, line);
    }
    is >> out;
  };
  next_int(w);
  next_int(h);
  next_int(maxval);
  if (!is || w <= 0 || h <= 0 || maxval != 255) {
    throw std::runtime_error("read_pgm: bad header in " + path);
  }
  is.get();  // single whitespace before raster
  Image img{w, h};
  is.read(reinterpret_cast<char*>(img.pixels().data()),
          static_cast<std::streamsize>(img.pixels().size()));
  if (!is) throw std::runtime_error("read_pgm: truncated raster in " + path);
  return img;
}

}  // namespace realm::jpeg
