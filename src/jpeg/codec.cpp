#include "realm/jpeg/codec.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <thread>

#include "realm/jpeg/dct.hpp"
#include "realm/jpeg/huffman.hpp"
#include "realm/jpeg/quant.hpp"
#include "realm/multiplier.hpp"
#include "realm/numeric/thread_pool.hpp"
#include "realm/obs/counters.hpp"
#include "realm/obs/trace.hpp"

namespace realm::jpeg {
namespace {

// JPEG-style magnitude category: number of bits to represent |v|.
int category(int v) {
  int a = v < 0 ? -v : v;
  int c = 0;
  while (a != 0) {
    a >>= 1;
    ++c;
  }
  return c;
}

// JPEG variable-length integer: negative values are stored one's-complement.
std::uint32_t vli_bits(int v, int cat) {
  return v >= 0 ? static_cast<std::uint32_t>(v)
                : static_cast<std::uint32_t>(v + (1 << cat) - 1);
}

int vli_decode(std::uint32_t bits, int cat) {
  if (cat == 0) return 0;
  const auto half = std::uint32_t{1} << (cat - 1);
  return bits >= half ? static_cast<int>(bits)
                      : static_cast<int>(bits) - ((1 << cat) - 1);
}

// Symbol alphabets: DC = category (0..15); AC = (run << 4) | category plus
// the JPEG EOB (0x00) and ZRL (0xF0) escapes.
constexpr int kDcSymbols = 16;
constexpr int kAcSymbols = 256;
constexpr int kEob = 0x00;
constexpr int kZrl = 0xF0;

struct BlockCodes {
  std::vector<std::pair<int, std::pair<std::uint32_t, int>>> tokens;  // (symbol, (extra, bits))
};

// Fixed shard granularity for the batched engine's parallel block passes.
// The shard grid depends only on the block count — never the thread count —
// and every shard writes its own block-index range, so encoded bytes and
// decoded pixels are invariant to the parallelism actually achieved (the
// MC / packed-sim sharding discipline).
constexpr std::size_t kCodecShardBlocks = 32;

unsigned resolve_threads(int requested) {
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

num::UMulFn effective_mul(const CodecOptions& opts) {
  if (opts.umul) return opts.umul;
  return [](std::uint64_t a, std::uint64_t b) { return a * b; };
}

num::UMulFn dequant_mul(const CodecOptions& opts) {
  if (opts.approximate_dequant) return effective_mul(opts);
  return [](std::uint64_t a, std::uint64_t b) { return a * b; };
}

void forward_block(const Image& img, int bx, int by, const num::UMulFn& mul,
                   const std::array<std::uint16_t, 64>& qtable, std::int16_t* levels) {
  std::array<std::int16_t, 64> block{};
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      block[static_cast<std::size_t>(y * 8 + x)] =
          static_cast<std::int16_t>(img.at(bx + x, by + y) - 128);
    }
  }
  std::array<std::int16_t, 64> coeffs{};
  fdct8x8(block, coeffs, mul);
  for (std::size_t i = 0; i < 64; ++i) {
    levels[i] = quantize(coeffs[i], qtable[i]);
  }
}

// Entropy stage shared verbatim by the reference and batched encoders: the
// two engines differ only in how the quantized `levels` array is produced,
// so byte-identity of the bitstream reduces to bit-identity of the levels.
Compressed entropy_encode(const Image& img, const std::vector<std::int16_t>& levels) {
  const auto& zz = zigzag_order();
  const std::size_t n_blocks = levels.size() / 64;

  std::vector<BlockCodes> blocks;
  blocks.reserve(n_blocks);
  std::vector<std::uint64_t> dc_freq(kDcSymbols, 0);
  std::vector<std::uint64_t> ac_freq(kAcSymbols, 0);
  int prev_dc = 0;
  {
    REALM_TRACE_SCOPE("jpeg/encode/tokenize");
    for (std::size_t bi = 0; bi < n_blocks; ++bi) {
      const std::int16_t* lv = levels.data() + bi * 64;
      BlockCodes bc;
      const int dc = lv[0];
      const int diff = dc - prev_dc;
      prev_dc = dc;
      const int dcat = category(diff);
      bc.tokens.push_back({dcat, {vli_bits(diff, dcat), dcat}});
      ++dc_freq[static_cast<std::size_t>(dcat)];

      int run = 0;
      for (int i = 1; i < 64; ++i) {
        const int v = lv[zz[static_cast<std::size_t>(i)]];
        if (v == 0) {
          ++run;
          continue;
        }
        while (run >= 16) {
          bc.tokens.push_back({-kZrl - 1, {0, 0}});  // negative marks AC symbol
          ++ac_freq[kZrl];
          run -= 16;
        }
        const int cat = category(v);
        const int sym = (run << 4) | cat;
        bc.tokens.push_back({-sym - 1, {vli_bits(v, cat), cat}});
        ++ac_freq[static_cast<std::size_t>(sym)];
        run = 0;
      }
      if (run > 0) {
        bc.tokens.push_back({-kEob - 1, {0, 0}});
        ++ac_freq[kEob];
      }
      blocks.push_back(std::move(bc));
    }
  }
  obs::counter_add(obs::Counter::kJpegBlocksEncoded, blocks.size());

  // Huffman table derivation from the gathered statistics.
  std::optional<HuffmanCode> dc_built, ac_built;
  {
    REALM_TRACE_SCOPE("jpeg/encode/huffman");
    dc_built.emplace(HuffmanCode::from_frequencies(dc_freq));
    ac_built.emplace(HuffmanCode::from_frequencies(ac_freq));
  }
  const HuffmanCode& dc_code = *dc_built;
  const HuffmanCode& ac_code = *ac_built;

  BitWriter w;
  {
    REALM_TRACE_SCOPE("jpeg/encode/emit");
    for (const auto& bc : blocks) {
      for (const auto& [sym, extra] : bc.tokens) {
        if (sym >= 0) {
          dc_code.encode(w, sym);
        } else {
          ac_code.encode(w, -sym - 1);
        }
        if (extra.second > 0) w.put(extra.first, extra.second);
      }
    }
  }

  Compressed out;
  out.width = img.width();
  out.height = img.height();
  out.payload = w.finish();
  out.dc_code_lengths = dc_code.lengths();
  out.ac_code_lengths = ac_code.lengths();
  return out;
}

// Serial bitstream parse into quantized levels, block-major.  Shared by both
// decoders; entropy decoding is inherently sequential (DC prediction plus a
// single bit cursor), the arithmetic downstream of it is not.
std::vector<std::int16_t> parse_levels(const Compressed& c) {
  REALM_TRACE_SCOPE("jpeg/decode/parse");
  const auto& zz = zigzag_order();
  const HuffmanCode dc_code = HuffmanCode::from_lengths(c.dc_code_lengths);
  const HuffmanCode ac_code = HuffmanCode::from_lengths(c.ac_code_lengths);
  const std::size_t n_blocks = static_cast<std::size_t>(c.width / 8) *
                               static_cast<std::size_t>(c.height / 8);
  std::vector<std::int16_t> levels(n_blocks * 64, 0);
  BitReader r{c.payload};
  int prev_dc = 0;
  for (std::size_t bi = 0; bi < n_blocks; ++bi) {
    std::int16_t* lv = levels.data() + bi * 64;
    const int dcat = dc_code.decode(r);
    const int diff = vli_decode(dcat > 0 ? r.get(dcat) : 0, dcat);
    prev_dc += diff;
    lv[0] = static_cast<std::int16_t>(prev_dc);

    int i = 1;
    while (i < 64) {
      const int sym = ac_code.decode(r);
      if (sym == kEob) break;
      if (sym == kZrl) {
        i += 16;
        continue;
      }
      const int run = sym >> 4;
      const int cat = sym & 0xF;
      i += run;
      if (i >= 64) throw std::runtime_error("decode: AC index overflow");
      lv[zz[static_cast<std::size_t>(i)]] =
          static_cast<std::int16_t>(vli_decode(cat > 0 ? r.get(cat) : 0, cat));
      ++i;
    }
  }
  return levels;
}

void inverse_block(const std::int16_t* levels, const std::array<std::uint16_t, 64>& qtable,
                   const num::UMulFn& mul, const num::UMulFn& dq_mul, Image& img, int bx,
                   int by) {
  std::array<std::int16_t, 64> coeffs{};
  for (std::size_t i = 0; i < 64; ++i) {
    coeffs[i] = static_cast<std::int16_t>(
        num::sat_signed(dequantize(levels[i], qtable[i], dq_mul), 16));
  }
  std::array<std::int16_t, 64> pixels{};
  idct8x8(coeffs, pixels, mul);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const int v = pixels[static_cast<std::size_t>(y * 8 + x)] + 128;
      img.set(bx + x, by + y, static_cast<std::uint8_t>(std::clamp(v, 0, 255)));
    }
  }
}

}  // namespace

std::size_t Compressed::size_bytes() const noexcept {
  return payload.size() + dc_code_lengths.size() + ac_code_lengths.size() + 16;
}

Compressed encode(const Image& img, const CodecOptions& opts) {
  return encode_plane(img, scaled_table(opts.quality), opts);
}

Compressed encode_plane_reference(const Image& img,
                                  const std::array<std::uint16_t, 64>& qtable,
                                  const CodecOptions& opts) {
  if (img.width() % 8 != 0 || img.height() % 8 != 0) {
    throw std::invalid_argument("encode: dimensions must be multiples of 8");
  }
  REALM_TRACE_SCOPE("jpeg/encode");
  const num::UMulFn mul = effective_mul(opts);
  const std::size_t n_blocks = static_cast<std::size_t>(img.width() / 8) *
                               static_cast<std::size_t>(img.height() / 8);
  std::vector<std::int16_t> levels(n_blocks * 64);
  {
    REALM_TRACE_SCOPE("jpeg/encode/transform");
    std::size_t bi = 0;
    for (int by = 0; by < img.height(); by += 8) {
      for (int bx = 0; bx < img.width(); bx += 8, ++bi) {
        forward_block(img, bx, by, mul, qtable, levels.data() + bi * 64);
      }
    }
  }
  Compressed out = entropy_encode(img, levels);
  out.quality = opts.quality;
  return out;
}

Compressed encode_plane(const Image& img, const std::array<std::uint16_t, 64>& qtable,
                        const CodecOptions& opts) {
  if (opts.mul == nullptr) return encode_plane_reference(img, qtable, opts);
  if (img.width() % 8 != 0 || img.height() % 8 != 0) {
    throw std::invalid_argument("encode: dimensions must be multiples of 8");
  }
  REALM_TRACE_SCOPE("jpeg/encode");
  const int bw = img.width() / 8;
  const std::size_t n_blocks =
      static_cast<std::size_t>(bw) * static_cast<std::size_t>(img.height() / 8);
  std::vector<std::int16_t> levels(n_blocks * 64);
  {
    REALM_TRACE_SCOPE("jpeg/encode/transform_batched");
    const std::size_t shards = (n_blocks + kCodecShardBlocks - 1) / kCodecShardBlocks;
    num::ThreadPool::global().run(
        shards, resolve_threads(opts.threads), [&](std::size_t si) {
          REALM_TRACE_SCOPE("jpeg/encode/shard");
          const std::size_t b0 = si * kCodecShardBlocks;
          const std::size_t nb = std::min(kCodecShardBlocks, n_blocks - b0);
          std::int16_t panel[kCodecShardBlocks * 64];
          std::int16_t coeffs[kCodecShardBlocks * 64];
          for (std::size_t b = 0; b < nb; ++b) {
            const std::size_t bi = b0 + b;
            const int bx = static_cast<int>(bi % static_cast<std::size_t>(bw)) * 8;
            const int by = static_cast<int>(bi / static_cast<std::size_t>(bw)) * 8;
            for (int y = 0; y < 8; ++y) {
              for (int x = 0; x < 8; ++x) {
                panel[b * 64 + static_cast<std::size_t>(y * 8 + x)] =
                    static_cast<std::int16_t>(img.at(bx + x, by + y) - 128);
              }
            }
          }
          fdct_panel(panel, coeffs, nb, *opts.mul);
          quantize_panel(coeffs, qtable, levels.data() + b0 * 64, nb);
        });
  }
  Compressed out = entropy_encode(img, levels);
  out.quality = opts.quality;
  return out;
}

Image decode(const Compressed& c, const CodecOptions& opts) {
  return decode_plane(c, scaled_table(c.quality), opts);
}

Image decode_plane_reference(const Compressed& c,
                             const std::array<std::uint16_t, 64>& qtable,
                             const CodecOptions& opts) {
  REALM_TRACE_SCOPE("jpeg/decode");
  const num::UMulFn mul = effective_mul(opts);
  const num::UMulFn dq = dequant_mul(opts);
  const std::vector<std::int16_t> levels = parse_levels(c);

  Image img{c.width, c.height};
  const int bw = c.width / 8;
  const std::size_t n_blocks = levels.size() / 64;
  {
    REALM_TRACE_SCOPE("jpeg/decode/inverse");
    for (std::size_t bi = 0; bi < n_blocks; ++bi) {
      const int bx = static_cast<int>(bi % static_cast<std::size_t>(bw)) * 8;
      const int by = static_cast<int>(bi / static_cast<std::size_t>(bw)) * 8;
      inverse_block(levels.data() + bi * 64, qtable, mul, dq, img, bx, by);
    }
  }
  obs::counter_add(obs::Counter::kJpegBlocksDecoded, n_blocks);
  return img;
}

Image decode_plane(const Compressed& c, const std::array<std::uint16_t, 64>& qtable,
                   const CodecOptions& opts) {
  if (opts.mul == nullptr) return decode_plane_reference(c, qtable, opts);
  REALM_TRACE_SCOPE("jpeg/decode");
  const std::vector<std::int16_t> levels = parse_levels(c);

  Image img{c.width, c.height};
  const int bw = c.width / 8;
  const std::size_t n_blocks = levels.size() / 64;
  const Multiplier* dq_mul = opts.approximate_dequant ? opts.mul : nullptr;
  {
    REALM_TRACE_SCOPE("jpeg/decode/inverse_batched");
    const std::size_t shards = (n_blocks + kCodecShardBlocks - 1) / kCodecShardBlocks;
    num::ThreadPool::global().run(
        shards, resolve_threads(opts.threads), [&](std::size_t si) {
          REALM_TRACE_SCOPE("jpeg/decode/shard");
          const std::size_t b0 = si * kCodecShardBlocks;
          const std::size_t nb = std::min(kCodecShardBlocks, n_blocks - b0);
          std::int16_t coeffs[kCodecShardBlocks * 64];
          std::int16_t pixels[kCodecShardBlocks * 64];
          dequantize_panel(levels.data() + b0 * 64, qtable, coeffs, nb, dq_mul);
          idct_panel(coeffs, pixels, nb, *opts.mul);
          for (std::size_t b = 0; b < nb; ++b) {
            const std::size_t bi = b0 + b;
            const int bx = static_cast<int>(bi % static_cast<std::size_t>(bw)) * 8;
            const int by = static_cast<int>(bi / static_cast<std::size_t>(bw)) * 8;
            for (int y = 0; y < 8; ++y) {
              for (int x = 0; x < 8; ++x) {
                const int v = pixels[b * 64 + static_cast<std::size_t>(y * 8 + x)] + 128;
                img.set(bx + x, by + y,
                        static_cast<std::uint8_t>(std::clamp(v, 0, 255)));
              }
            }
          }
        });
  }
  obs::counter_add(obs::Counter::kJpegBlocksDecoded, n_blocks);
  return img;
}

Image roundtrip(const Image& img, const CodecOptions& opts) {
  return decode(encode(img, opts), opts);
}

namespace {

constexpr std::uint32_t kMagic = 0x524A5047;  // "RJPG"

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  if (pos + 4 > in.size()) throw std::runtime_error("deserialize: truncated blob");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[pos++]) << (8 * i);
  return v;
}

void put_bytes(std::vector<std::uint8_t>& out, const std::vector<std::uint8_t>& bytes) {
  put_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out.insert(out.end(), bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> get_bytes(const std::vector<std::uint8_t>& in,
                                    std::size_t& pos) {
  const std::uint32_t size = get_u32(in, pos);
  if (pos + size > in.size()) throw std::runtime_error("deserialize: truncated blob");
  std::vector<std::uint8_t> bytes(in.begin() + static_cast<std::ptrdiff_t>(pos),
                                  in.begin() + static_cast<std::ptrdiff_t>(pos + size));
  pos += size;
  return bytes;
}

}  // namespace

std::vector<std::uint8_t> serialize(const Compressed& c) {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, static_cast<std::uint32_t>(c.width));
  put_u32(out, static_cast<std::uint32_t>(c.height));
  put_u32(out, static_cast<std::uint32_t>(c.quality));
  put_bytes(out, c.dc_code_lengths);
  put_bytes(out, c.ac_code_lengths);
  put_bytes(out, c.payload);
  return out;
}

Compressed deserialize(const std::vector<std::uint8_t>& blob) {
  std::size_t pos = 0;
  if (get_u32(blob, pos) != kMagic) {
    throw std::runtime_error("deserialize: not an RJPG blob");
  }
  Compressed c;
  c.width = static_cast<int>(get_u32(blob, pos));
  c.height = static_cast<int>(get_u32(blob, pos));
  c.quality = static_cast<int>(get_u32(blob, pos));
  if (c.width <= 0 || c.height <= 0 || c.width % 8 != 0 || c.height % 8 != 0 ||
      c.quality < 1 || c.quality > 100) {
    throw std::runtime_error("deserialize: implausible header");
  }
  c.dc_code_lengths = get_bytes(blob, pos);
  c.ac_code_lengths = get_bytes(blob, pos);
  c.payload = get_bytes(blob, pos);
  return c;
}

void write_compressed(const Compressed& c, const std::string& path) {
  std::ofstream os{path, std::ios::binary};
  if (!os) throw std::runtime_error("write_compressed: cannot open " + path);
  const auto blob = serialize(c);
  os.write(reinterpret_cast<const char*>(blob.data()),
           static_cast<std::streamsize>(blob.size()));
  if (!os) throw std::runtime_error("write_compressed: write failed for " + path);
}

Compressed read_compressed(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw std::runtime_error("read_compressed: cannot open " + path);
  std::vector<std::uint8_t> blob{std::istreambuf_iterator<char>{is},
                                 std::istreambuf_iterator<char>{}};
  return deserialize(blob);
}

}  // namespace realm::jpeg
