#include "realm/jpeg/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "realm/numeric/rng.hpp"

namespace realm::jpeg {
namespace {

// Smooth value noise: a coarse random lattice, bilinearly interpolated with
// smoothstep, octaves summed.  Deterministic per seed.
class ValueNoise {
 public:
  ValueNoise(int lattice, std::uint64_t seed) : n_{lattice} {
    num::Xoshiro256 rng{seed};
    grid_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
    for (auto& g : grid_) g = rng.uniform();
  }

  [[nodiscard]] double at(double x, double y) const {  // x, y in [0, 1)
    const double gx = x * (n_ - 1);
    const double gy = y * (n_ - 1);
    const int x0 = std::min(static_cast<int>(gx), n_ - 2);
    const int y0 = std::min(static_cast<int>(gy), n_ - 2);
    const double fx = smooth(gx - x0);
    const double fy = smooth(gy - y0);
    const double a = g(x0, y0), b = g(x0 + 1, y0), c = g(x0, y0 + 1), d = g(x0 + 1, y0 + 1);
    return (a * (1 - fx) + b * fx) * (1 - fy) + (c * (1 - fx) + d * fx) * fy;
  }

 private:
  static double smooth(double t) { return t * t * (3.0 - 2.0 * t); }
  [[nodiscard]] double g(int x, int y) const {
    return grid_[static_cast<std::size_t>(y) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(x)];
  }
  int n_;
  std::vector<double> grid_;
};

std::uint8_t to_px(double v) {
  return static_cast<std::uint8_t>(std::clamp(std::lround(v), 0L, 255L));
}

double ellipse(double x, double y, double cx, double cy, double rx, double ry) {
  const double dx = (x - cx) / rx, dy = (y - cy) / ry;
  return dx * dx + dy * dy;  // < 1 inside
}

}  // namespace

Image synthetic_cameraman(int size) {
  Image img{size, size};
  const ValueNoise grass{24, 0xCA11E7u};
  const ValueNoise cloth{12, 0xC0A7u};
  for (int yi = 0; yi < size; ++yi) {
    for (int xi = 0; xi < size; ++xi) {
      const double x = (xi + 0.5) / size, y = (yi + 0.5) / size;
      // Bright sky with a soft vertical gradient.
      double v = 210.0 - 50.0 * y;
      // Ground: textured grass on the lower quarter.
      if (y > 0.72) {
        v = 95.0 + 55.0 * grass.at(x, y) + 20.0 * (y - 0.72);
      }
      // Figure: head, torso (coat), arm; dark with cloth texture.
      const bool head = ellipse(x, y, 0.42, 0.22, 0.075, 0.095) < 1.0;
      const bool torso = ellipse(x, y, 0.42, 0.52, 0.16, 0.30) < 1.0 && y < 0.78;
      const bool arm = ellipse(x, y, 0.55, 0.42, 0.16, 0.05) < 1.0;
      if (head || torso || arm) v = 28.0 + 30.0 * cloth.at(x, y);
      // Face patch on the head.
      if (ellipse(x, y, 0.425, 0.225, 0.045, 0.06) < 1.0) v = 150.0 - 40.0 * y;
      // Tripod: three thin dark legs in the lower-right.
      const auto leg = [&](double x0, double slope) {
        const double d = std::fabs((x - x0) - slope * (y - 0.55));
        return y > 0.55 && y < 0.95 && d < 0.006;
      };
      if (leg(0.72, 0.0) || leg(0.72, 0.22) || leg(0.72, -0.22)) v = 20.0;
      // Camera box on the tripod.
      if (x > 0.665 && x < 0.775 && y > 0.46 && y < 0.56) v = 35.0;
      img.set(xi, yi, to_px(v));
    }
  }
  return img;
}

Image synthetic_lena(int size) {
  Image img{size, size};
  const ValueNoise soft{8, 0x1E9Au};
  const ValueNoise fine{48, 0xFEA7u};
  for (int yi = 0; yi < size; ++yi) {
    for (int xi = 0; xi < size; ++xi) {
      const double x = (xi + 0.5) / size, y = (yi + 0.5) / size;
      // Warm mid-tone background with diagonal lighting.
      double v = 120.0 + 60.0 * soft.at(x, y) + 25.0 * (x - y);
      // Large smooth oval (face) with gentle shading.
      if (ellipse(x, y, 0.52, 0.42, 0.22, 0.28) < 1.0) {
        v = 165.0 - 45.0 * ellipse(x, y, 0.52, 0.42, 0.22, 0.28) + 8.0 * fine.at(x, y);
      }
      // Hat brim: dark curved band above the face.
      const double band = ellipse(x, y, 0.52, 0.23, 0.33, 0.14);
      if (band < 1.0 && band > 0.45) v = 45.0 + 40.0 * soft.at(y, x);
      // Shoulder: smooth dark region lower-left.
      if (ellipse(x, y, 0.25, 0.95, 0.35, 0.38) < 1.0) v = 95.0 + 20.0 * soft.at(x, y);
      // Mild film grain.
      v += 6.0 * (fine.at(y, x) - 0.5);
      img.set(xi, yi, to_px(v));
    }
  }
  return img;
}

Image synthetic_livingroom(int size) {
  Image img{size, size};
  const ValueNoise wall{6, 0x11F0u};
  const ValueNoise rug{32, 0xA5A5u};
  for (int yi = 0; yi < size; ++yi) {
    for (int xi = 0; xi < size; ++xi) {
      const double x = (xi + 0.5) / size, y = (yi + 0.5) / size;
      // Wall with soft lighting; floor below 0.62.
      double v = y < 0.62 ? 170.0 - 35.0 * y + 15.0 * wall.at(x, y)
                          : 110.0 + 18.0 * wall.at(x, y);
      // Rug: strongly textured band on the floor.
      if (y > 0.74) v = 90.0 + 70.0 * rug.at(x * 2.0 - std::floor(x * 2.0), y);
      // Window: bright rectangle with dark frame.
      if (x > 0.08 && x < 0.34 && y > 0.10 && y < 0.42) {
        v = 235.0 - 20.0 * y;
        if (x < 0.095 || x > 0.325 || y < 0.115 || y > 0.405 ||
            std::fabs(x - 0.21) < 0.006) {
          v = 60.0;
        }
      }
      // Sofa: big dark rectangle with cushion separations.
      if (x > 0.42 && x < 0.92 && y > 0.40 && y < 0.68) {
        v = 75.0 + 15.0 * wall.at(y, x);
        if (std::fabs(x - 0.59) < 0.005 || std::fabs(x - 0.76) < 0.005) v = 50.0;
        if (y < 0.44) v = 95.0;  // back cushion highlight
      }
      // Side table with lamp.
      if (x > 0.12 && x < 0.26 && y > 0.52 && y < 0.62) v = 130.0;
      if (ellipse(x, y, 0.19, 0.44, 0.055, 0.07) < 1.0) v = 210.0;  // lamp shade
      if (std::fabs(x - 0.19) < 0.004 && y > 0.50 && y < 0.53) v = 40.0;  // stem
      img.set(xi, yi, to_px(v));
    }
  }
  return img;
}

std::vector<NamedImage> table2_images(int size) {
  std::vector<NamedImage> out;
  out.push_back({"synthetic_cameraman", synthetic_cameraman(size)});
  out.push_back({"synthetic_lena", synthetic_lena(size)});
  out.push_back({"synthetic_livingroom", synthetic_livingroom(size)});
  return out;
}

}  // namespace realm::jpeg
