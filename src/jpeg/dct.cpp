#include "realm/jpeg/dct.hpp"

#include <cmath>

#include "realm/multiplier.hpp"
#include "realm/numeric/fixed_point.hpp"
#include "realm/obs/counters.hpp"

namespace realm::jpeg {
namespace {

std::array<std::int16_t, 64> make_matrix() {
  std::array<std::int16_t, 64> c{};
  const double pi = std::acos(-1.0);
  for (int u = 0; u < 8; ++u) {
    const double s = (u == 0) ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
    for (int k = 0; k < 8; ++k) {
      const double v = s * std::cos((2 * k + 1) * u * pi / 16.0);
      c[static_cast<std::size_t>(u * 8 + k)] =
          static_cast<std::int16_t>(std::lround(v * (1 << kDctCoeffBits)));
    }
  }
  return c;
}

// Round-to-nearest rescale by 2^-12, then clamp to the 16-bit datapath —
// the single post-accumulation step both engines share verbatim.
inline std::int32_t rescale_sat(std::int64_t acc) {
  const std::int64_t rounded =
      (acc + (acc >= 0 ? (1 << (kDctCoeffBits - 1)) : -(1 << (kDctCoeffBits - 1)))) >>
      kDctCoeffBits;
  return num::sat_signed(rounded, 16);
}

// One 8-point transform pass: out[u] = Σ_k m[u][k] · in[k], products through
// the multiplier under test, accumulated in 64 bits and rescaled once — a
// fixed-point MAC datapath.  `transpose_m` applies mᵀ instead.
void pass(const std::array<std::int16_t, 64>& m, const std::int32_t in[8],
          std::int32_t out[8], bool transpose_m, const num::UMulFn& umul) {
  for (int u = 0; u < 8; ++u) {
    std::int64_t acc = 0;
    for (int k = 0; k < 8; ++k) {
      const std::int16_t coeff =
          m[static_cast<std::size_t>(transpose_m ? k * 8 + u : u * 8 + k)];
      acc += num::signed_mul(coeff, in[k], umul);
    }
    out[u] = rescale_sat(acc);
  }
}

void transform(const std::array<std::int16_t, 64>& in, std::array<std::int16_t, 64>& out,
               bool inverse, const num::UMulFn& umul) {
  const auto& c = dct_matrix_q12();
  std::int32_t tmp[64];
  // Column pass: tmp = M · in (M = C forward, Cᵀ inverse).
  for (int j = 0; j < 8; ++j) {
    std::int32_t col[8], res[8];
    for (int k = 0; k < 8; ++k) col[k] = in[static_cast<std::size_t>(k * 8 + j)];
    pass(c, col, res, inverse, umul);
    for (int u = 0; u < 8; ++u) tmp[u * 8 + j] = res[u];
  }
  // Row pass: out = tmp · Mᵀ.
  for (int i = 0; i < 8; ++i) {
    std::int32_t row[8], res[8];
    for (int k = 0; k < 8; ++k) row[k] = tmp[i * 8 + k];
    pass(c, row, res, inverse, umul);
    for (int v = 0; v < 8; ++v) {
      out[static_cast<std::size_t>(i * 8 + v)] = static_cast<std::int16_t>(res[v]);
    }
  }
}

// ---- panel engine -------------------------------------------------------
//
// The 2-D transform M·X·Mᵀ is one primitive applied twice: Y = M·A with the
// result stored *transposed*.  Feeding the first call's output back in gives
// (M·(M·X)ᵀ)ᵀ = M·X·Mᵀ in natural orientation.  Per (output row u, tap k)
// the coefficient is fixed across every block and every intra-block column,
// so the panel pass issues one signed_row_batch over a W·8-wide lane per
// (u, k) — 64 row-kernel calls instead of W·8·64 virtual multiplies — while
// reproducing the scalar pass's per-output accumulation order (k ascending)
// exactly.

constexpr std::size_t kPanelBlocks = 32;  // blocks per panel: lanes stay L1-resident
constexpr std::size_t kLane = kPanelBlocks * 8;

// One batched pass over `nb <= kPanelBlocks` blocks: out[b][j*8+u] =
// rescale_sat(Σ_k m(u,k) · in[b][k*8+j]).
//
// Each tap lane is gathered *pre-split* into sign/magnitude form — the form
// every (u, k) row batch consumes — so the decomposition num::signed_mul
// derives per product (and signed_row_batch would re-derive 8 times per
// lane, once per output u) happens exactly once per panel.  The row batches
// then hit mul.multiply_row_batch directly and the sign is re-applied
// branchlessly inside the accumulation: identical products, identical signs,
// identical k-ascending order — bit-identity with the scalar pass holds.
void pass_panel(const std::int16_t* in, std::int16_t* out, std::size_t nb,
                bool transpose_m, const Multiplier& mul) {
  const auto& c = dct_matrix_q12();
  const std::size_t lane_len = nb * 8;
  std::uint64_t mag[8][kLane];  // |in|, the unsigned multiplier operand
  std::int64_t neg[8][kLane];   // sign mask: -1 where in < 0, else 0
  for (std::size_t k = 0; k < 8; ++k) {
    for (std::size_t b = 0; b < nb; ++b) {
      const std::int16_t* row = in + b * 64 + k * 8;
      for (std::size_t j = 0; j < 8; ++j) {
        const std::int64_t v = row[j];
        mag[k][b * 8 + j] = static_cast<std::uint64_t>(v < 0 ? -v : v);
        neg[k][b * 8 + j] = v < 0 ? -1 : 0;
      }
    }
  }
  std::int64_t acc[kLane];
  std::uint64_t prod[kLane];
  for (std::size_t u = 0; u < 8; ++u) {
    for (std::size_t i = 0; i < lane_len; ++i) acc[i] = 0;
    for (std::size_t k = 0; k < 8; ++k) {
      const std::int32_t coeff = c[transpose_m ? k * 8 + u : u * 8 + k];
      const auto ua = static_cast<std::uint64_t>(coeff < 0 ? -coeff : coeff);
      const std::int64_t amask = coeff < 0 ? -1 : 0;
      mul.multiply_row_batch(ua, mag[k], prod, lane_len);
      for (std::size_t i = 0; i < lane_len; ++i) {
        // (p ^ m) - m negates p where m == -1 — signed_mul's sign rule.
        const std::int64_t m = neg[k][i] ^ amask;
        acc[i] += (static_cast<std::int64_t>(prod[i]) ^ m) - m;
      }
    }
    for (std::size_t b = 0; b < nb; ++b) {
      for (std::size_t j = 0; j < 8; ++j) {
        out[b * 64 + j * 8 + u] =
            static_cast<std::int16_t>(rescale_sat(acc[b * 8 + j]));
      }
    }
  }
}

void transform_panel(const std::int16_t* in, std::int16_t* out, std::size_t n_blocks,
                     bool inverse, const Multiplier& mul) {
  std::int16_t mid[kPanelBlocks * 64];
  for (std::size_t b0 = 0; b0 < n_blocks; b0 += kPanelBlocks) {
    const std::size_t nb =
        n_blocks - b0 < kPanelBlocks ? n_blocks - b0 : kPanelBlocks;
    pass_panel(in + b0 * 64, mid, nb, inverse, mul);
    pass_panel(mid, out + b0 * 64, nb, inverse, mul);
  }
  obs::counter_add(obs::Counter::kDctBlocksBatched, n_blocks);
}

}  // namespace

const std::array<std::int16_t, 64>& dct_matrix_q12() {
  static const std::array<std::int16_t, 64> c = make_matrix();
  return c;
}

void fdct8x8(const std::array<std::int16_t, 64>& block, std::array<std::int16_t, 64>& out,
             const num::UMulFn& umul) {
  transform(block, out, /*inverse=*/false, umul);
}

void idct8x8(const std::array<std::int16_t, 64>& coeffs,
             std::array<std::int16_t, 64>& out, const num::UMulFn& umul) {
  transform(coeffs, out, /*inverse=*/true, umul);
}

void fdct_panel(const std::int16_t* blocks, std::int16_t* out, std::size_t n_blocks,
                const Multiplier& mul) {
  transform_panel(blocks, out, n_blocks, /*inverse=*/false, mul);
}

void idct_panel(const std::int16_t* coeffs, std::int16_t* out, std::size_t n_blocks,
                const Multiplier& mul) {
  transform_panel(coeffs, out, n_blocks, /*inverse=*/true, mul);
}

}  // namespace realm::jpeg
