#include "realm/jpeg/dct.hpp"

#include <cmath>

#include "realm/numeric/fixed_point.hpp"

namespace realm::jpeg {
namespace {

std::array<std::int16_t, 64> make_matrix() {
  std::array<std::int16_t, 64> c{};
  const double pi = std::acos(-1.0);
  for (int u = 0; u < 8; ++u) {
    const double s = (u == 0) ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
    for (int k = 0; k < 8; ++k) {
      const double v = s * std::cos((2 * k + 1) * u * pi / 16.0);
      c[static_cast<std::size_t>(u * 8 + k)] =
          static_cast<std::int16_t>(std::lround(v * (1 << kDctCoeffBits)));
    }
  }
  return c;
}

// One 8-point transform pass: out[u] = Σ_k m[u][k] · in[k], products through
// the multiplier under test, accumulated in 32 bits and rescaled once — a
// fixed-point MAC datapath.  `transpose_m` applies mᵀ instead.
void pass(const std::array<std::int16_t, 64>& m, const std::int32_t in[8],
          std::int32_t out[8], bool transpose_m, const num::UMulFn& umul) {
  for (int u = 0; u < 8; ++u) {
    std::int64_t acc = 0;
    for (int k = 0; k < 8; ++k) {
      const std::int16_t coeff =
          m[static_cast<std::size_t>(transpose_m ? k * 8 + u : u * 8 + k)];
      acc += num::signed_mul(coeff, in[k], umul);
    }
    // Round-to-nearest rescale by 2^-12, then clamp to the 16-bit datapath.
    const std::int64_t rounded =
        (acc + (acc >= 0 ? (1 << (kDctCoeffBits - 1)) : -(1 << (kDctCoeffBits - 1)))) >>
        kDctCoeffBits;
    out[u] = num::sat_signed(rounded, 16);
  }
}

void transform(const std::array<std::int16_t, 64>& in, std::array<std::int16_t, 64>& out,
               bool inverse, const num::UMulFn& umul) {
  const auto& c = dct_matrix_q12();
  std::int32_t tmp[64];
  // Column pass: tmp = M · in (M = C forward, Cᵀ inverse).
  for (int j = 0; j < 8; ++j) {
    std::int32_t col[8], res[8];
    for (int k = 0; k < 8; ++k) col[k] = in[static_cast<std::size_t>(k * 8 + j)];
    pass(c, col, res, inverse, umul);
    for (int u = 0; u < 8; ++u) tmp[u * 8 + j] = res[u];
  }
  // Row pass: out = tmp · Mᵀ.
  for (int i = 0; i < 8; ++i) {
    std::int32_t row[8], res[8];
    for (int k = 0; k < 8; ++k) row[k] = tmp[i * 8 + k];
    pass(c, row, res, inverse, umul);
    for (int v = 0; v < 8; ++v) {
      out[static_cast<std::size_t>(i * 8 + v)] = static_cast<std::int16_t>(res[v]);
    }
  }
}

}  // namespace

const std::array<std::int16_t, 64>& dct_matrix_q12() {
  static const std::array<std::int16_t, 64> c = make_matrix();
  return c;
}

void fdct8x8(const std::array<std::int16_t, 64>& block, std::array<std::int16_t, 64>& out,
             const num::UMulFn& umul) {
  transform(block, out, /*inverse=*/false, umul);
}

void idct8x8(const std::array<std::int16_t, 64>& coeffs,
             std::array<std::int16_t, 64>& out, const num::UMulFn& umul) {
  transform(coeffs, out, /*inverse=*/true, umul);
}

}  // namespace realm::jpeg
