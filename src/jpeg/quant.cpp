#include "realm/jpeg/quant.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "realm/multiplier.hpp"

namespace realm::jpeg {

const std::array<std::uint16_t, 64>& base_luminance_table() {
  static const std::array<std::uint16_t, 64> table{
      16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
      14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
      18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
      49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};
  return table;
}

std::array<std::uint16_t, 64> scaled_table(int quality) {
  if (quality < 1 || quality > 100) throw std::invalid_argument("quality in [1, 100]");
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<std::uint16_t, 64> out{};
  const auto& base = base_luminance_table();
  for (std::size_t i = 0; i < 64; ++i) {
    const int v = (base[i] * scale + 50) / 100;
    out[i] = static_cast<std::uint16_t>(std::clamp(v, 1, 255));
  }
  return out;
}

std::int16_t quantize(std::int32_t coeff, std::uint16_t q) noexcept {
  const int iq = q;
  const std::int32_t half = iq / 2;
  const std::int32_t r = coeff >= 0 ? (coeff + half) / iq : -((-coeff + half) / iq);
  return static_cast<std::int16_t>(r);
}

void quantize_panel(const std::int16_t* coeffs,
                    const std::array<std::uint16_t, 64>& qtable, std::int16_t* levels,
                    std::size_t n_blocks) noexcept {
  // Per-position exact reciprocals (see the header proof): one division per
  // table entry per call instead of one per coefficient.
  std::uint32_t recip[64];
  std::uint32_t half[64];
  for (std::size_t i = 0; i < 64; ++i) {
    recip[i] = ((1u << 24) + qtable[i] - 1u) / qtable[i];
    half[i] = qtable[i] / 2u;
  }
  for (std::size_t b = 0; b < n_blocks; ++b) {
    for (std::size_t i = 0; i < 64; ++i) {
      const std::int32_t c = coeffs[b * 64 + i];
      const std::uint32_t n = static_cast<std::uint32_t>(c >= 0 ? c : -c) + half[i];
      const auto q = static_cast<std::int32_t>(
          (static_cast<std::uint64_t>(n) * recip[i]) >> 24);
      levels[b * 64 + i] = static_cast<std::int16_t>(c >= 0 ? q : -q);
    }
  }
}

std::int32_t dequantize(std::int16_t level, std::uint16_t q, const num::UMulFn& umul) {
  return static_cast<std::int32_t>(num::signed_mul(q, level, umul));
}

void dequantize_panel(const std::int16_t* levels,
                      const std::array<std::uint16_t, 64>& qtable, std::int16_t* out,
                      std::size_t n_blocks, const Multiplier* mul) {
  if (mul == nullptr) {
    // Exact constant multiplier (the codec default): a plain product, with
    // the same 16-bit saturation the inverse path applies.
    for (std::size_t b = 0; b < n_blocks; ++b) {
      for (std::size_t i = 0; i < 64; ++i) {
        const std::int64_t p = std::int64_t{levels[b * 64 + i]} * qtable[i];
        out[b * 64 + i] = static_cast<std::int16_t>(num::sat_signed(p, 16));
      }
    }
    return;
  }
  // Approximate dequantizer: per coefficient position the table entry is
  // fixed, so gather the position's levels across blocks into one lane and
  // issue a single row batch.
  std::vector<std::int64_t> lane(n_blocks), prod(n_blocks);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t b = 0; b < n_blocks; ++b) lane[b] = levels[b * 64 + i];
    num::signed_row_batch(qtable[i], lane.data(), prod.data(), n_blocks, *mul);
    for (std::size_t b = 0; b < n_blocks; ++b) {
      out[b * 64 + i] = static_cast<std::int16_t>(num::sat_signed(prod[b], 16));
    }
  }
}

const std::array<int, 64>& zigzag_order() {
  static const std::array<int, 64> zz = [] {
    std::array<int, 64> out{};
    int idx = 0;
    for (int s = 0; s < 15; ++s) {
      if (s % 2 == 0) {  // up-right
        for (int y = std::min(s, 7); y >= std::max(0, s - 7); --y) {
          out[static_cast<std::size_t>(idx++)] = y * 8 + (s - y);
        }
      } else {  // down-left
        for (int x = std::min(s, 7); x >= std::max(0, s - 7); --x) {
          out[static_cast<std::size_t>(idx++)] = (s - x) * 8 + x;
        }
      }
    }
    return out;
  }();
  return zz;
}

}  // namespace realm::jpeg
