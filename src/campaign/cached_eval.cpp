#include "realm/campaign/cached_eval.hpp"

#include "realm/campaign/record.hpp"
#include "realm/hw/circuits.hpp"
#include "realm/hw/cost_model.hpp"
#include "realm/hw/faults.hpp"
#include "realm/hw/timing.hpp"

namespace realm::campaign {

std::string monte_carlo_key(const std::string& spec, int n,
                            const err::MonteCarloOptions& opts) {
  // opts.threads never changes the result (thread-count invariance) and is
  // deliberately absent.
  return RequestKey{"error_mc"}
      .field("engine", kErrorEngineVersion)
      .field("spec", spec)
      .field("n", n)
      .field("samples", opts.samples)
      .field_hex("seed", opts.seed)
      .str();
}

std::string exhaustive_key(const std::string& spec, int n, std::uint64_t lo,
                           std::uint64_t hi) {
  // No seed, no sample budget, no thread count: an exact result is fully
  // determined by (engine, spec, n, range).
  return RequestKey{"error_exhaustive"}
      .field("engine", kExhaustiveEngineVersion)
      .field("spec", spec)
      .field("n", n)
      .field("lo", lo)
      .field("hi", hi)
      .str();
}

std::string synthesis_key(const std::string& spec, int n,
                          const hw::StimulusProfile& profile) {
  return RequestKey{"synthesis"}
      .field("engine", kSynthesisEngineVersion)
      .field("spec", spec)
      .field("n", n)
      .field("cycles", static_cast<std::uint64_t>(profile.cycles))
      .field_hex("seed", profile.seed)
      .field("toggle_rate", profile.toggle_rate)
      .field("probability", profile.probability)
      .field("glitches", static_cast<std::int64_t>(profile.count_glitches ? 1 : 0))
      .str();
}

std::string fault_key(const std::string& spec, int n, int vectors,
                      std::uint64_t seed, std::size_t max_sites) {
  return RequestKey{"fault_sweep"}
      .field("engine", kFaultEngineVersion)
      .field("spec", spec)
      .field("n", n)
      .field("vectors", vectors)
      .field_hex("seed", seed)
      .field("max_sites", static_cast<std::uint64_t>(max_sites))
      .str();
}

std::string serialize_error_metrics(const err::ErrorMetrics& m) {
  return PayloadWriter{}
      .field("bias", m.bias)
      .field("mean", m.mean)
      .field("variance", m.variance)
      .field("min", m.min)
      .field("max", m.max)
      .field("samples", m.samples)
      .str();
}

err::ErrorMetrics parse_error_metrics(const std::string& payload) {
  const PayloadReader r{payload};
  err::ErrorMetrics m;
  m.bias = r.get_double("bias");
  m.mean = r.get_double("mean");
  m.variance = r.get_double("variance");
  m.min = r.get_double("min");
  m.max = r.get_double("max");
  m.samples = r.get_u64("samples");
  return m;
}

std::string serialize_exhaustive_report(const err::ExhaustiveReport& r) {
  return PayloadWriter{}
      .field("bias", r.metrics.bias)
      .field("mean", r.metrics.mean)
      .field("variance", r.metrics.variance)
      .field("min", r.metrics.min)
      .field("max", r.metrics.max)
      .field("samples", r.metrics.samples)
      .field("pairs", r.pairs)
      .field("min_a", r.min_peak.a)
      .field("min_b", r.min_peak.b)
      .field("min_product", r.min_peak.product)
      .field("min_error", r.min_peak.error)
      .field("max_a", r.max_peak.a)
      .field("max_b", r.max_peak.b)
      .field("max_product", r.max_peak.product)
      .field("max_error", r.max_peak.error)
      .field("peaks_valid", std::uint64_t{r.min_peak.valid ? 1u : 0u})
      .str();
}

err::ExhaustiveReport parse_exhaustive_report(const std::string& payload) {
  const PayloadReader p{payload};
  err::ExhaustiveReport r;
  r.metrics.bias = p.get_double("bias");
  r.metrics.mean = p.get_double("mean");
  r.metrics.variance = p.get_double("variance");
  r.metrics.min = p.get_double("min");
  r.metrics.max = p.get_double("max");
  r.metrics.samples = p.get_u64("samples");
  r.pairs = p.get_u64("pairs");
  const bool valid = p.get_u64("peaks_valid") != 0;
  r.min_peak = {p.get_u64("min_a"), p.get_u64("min_b"), p.get_u64("min_product"),
                p.get_double("min_error"), valid};
  r.max_peak = {p.get_u64("max_a"), p.get_u64("max_b"), p.get_u64("max_product"),
                p.get_double("max_error"), valid};
  return r;
}

err::ErrorMetrics cached_monte_carlo(CampaignRunner* runner, const Multiplier& design,
                                     const std::string& spec, int n,
                                     const err::MonteCarloOptions& opts) {
  if (runner == nullptr) return err::monte_carlo(design, opts);
  const std::string payload =
      runner->run_unit(monte_carlo_key(spec, n, opts), [&] {
        return serialize_error_metrics(err::monte_carlo(design, opts));
      });
  // Both paths (fresh and resumed) decode the stored payload, so a campaign
  // run's numbers are the store's numbers by construction.
  return parse_error_metrics(payload);
}

err::ExhaustiveReport cached_exhaustive(CampaignRunner* runner,
                                        const Multiplier& design,
                                        const std::string& spec, int n,
                                        std::uint64_t lo, std::uint64_t hi,
                                        int threads) {
  if (runner == nullptr) {
    return err::exhaustive_report(design, nullptr, lo, hi, threads);
  }
  const std::string payload =
      runner->run_unit(exhaustive_key(spec, n, lo, hi), [&] {
        return serialize_exhaustive_report(
            err::exhaustive_report(design, nullptr, lo, hi, threads));
      });
  return parse_exhaustive_report(payload);
}

// Public since the serving layer: the net warm path answers synthesis
// requests with the stored payload verbatim, so the codec is part of the
// wire contract, not a private detail.
[[nodiscard]] std::string serialize_synthesis(const SynthesisResult& s) {
  return PayloadWriter{}
      .field("area_um2", s.area_um2)
      .field("power_uw", s.power_uw)
      .field("area_reduction_pct", s.area_reduction_pct)
      .field("power_reduction_pct", s.power_reduction_pct)
      .field("delay_ps", s.delay_ps)
      .str();
}

[[nodiscard]] SynthesisResult parse_synthesis(const std::string& payload) {
  const PayloadReader r{payload};
  SynthesisResult s;
  s.area_um2 = r.get_double("area_um2");
  s.power_uw = r.get_double("power_uw");
  s.area_reduction_pct = r.get_double("area_reduction_pct");
  s.power_reduction_pct = r.get_double("power_reduction_pct");
  s.delay_ps = r.get_double("delay_ps");
  return s;
}

namespace {

[[nodiscard]] SynthesisResult compute_synthesis(hw::CostModel& cm,
                                                const std::string& spec, int n) {
  SynthesisResult s;
  const hw::DesignCost& cost = cm.cost(spec);
  s.area_um2 = cost.area_um2;
  s.power_uw = cost.power_uw;
  s.area_reduction_pct = cm.area_reduction_pct(spec);
  s.power_reduction_pct = cm.power_reduction_pct(spec);
  s.delay_ps = hw::analyze_timing(hw::build_circuit(spec, n)).critical_path_ps;
  return s;
}

[[nodiscard]] std::string serialize_faults(const FaultSummary& f) {
  return PayloadWriter{}
      .field("gates", f.gates)
      .field("sites_analyzed", f.sites_analyzed)
      .field("sites_undetected", f.sites_undetected)
      .field("mean_rel_error", f.mean_rel_error)
      .field("worst_rel_error", f.worst_rel_error)
      .str();
}

[[nodiscard]] FaultSummary parse_faults(const std::string& payload) {
  const PayloadReader r{payload};
  FaultSummary f;
  f.gates = r.get_u64("gates");
  f.sites_analyzed = r.get_u64("sites_analyzed");
  f.sites_undetected = r.get_u64("sites_undetected");
  f.mean_rel_error = r.get_double("mean_rel_error");
  f.worst_rel_error = r.get_double("worst_rel_error");
  return f;
}

[[nodiscard]] FaultSummary compute_faults(const std::string& spec, int n, int vectors,
                                          std::uint64_t seed, std::size_t max_sites,
                                          int threads) {
  const hw::Module mod = hw::build_circuit(spec, n);
  const hw::FaultReport r =
      hw::analyze_fault_impact(mod, vectors, seed, max_sites, threads);
  FaultSummary f;
  f.gates = mod.gates().size();
  f.sites_analyzed = r.sites_analyzed;
  f.sites_undetected = r.sites_undetected;
  f.mean_rel_error = r.mean_rel_error;
  f.worst_rel_error = r.worst_rel_error;
  return f;
}

}  // namespace

SynthesisResult cached_synthesis(CampaignRunner* runner, const std::string& spec,
                                 int n, const hw::StimulusProfile& profile,
                                 const std::function<hw::CostModel&()>& model) {
  if (runner == nullptr) return compute_synthesis(model(), spec, n);
  const std::string payload =
      runner->run_unit(synthesis_key(spec, n, profile),
                       [&] { return serialize_synthesis(compute_synthesis(model(), spec, n)); });
  return parse_synthesis(payload);
}

FaultSummary cached_fault_impact(CampaignRunner* runner, const std::string& spec,
                                 int n, int vectors, std::uint64_t seed,
                                 std::size_t max_sites, int threads) {
  if (runner == nullptr) {
    return compute_faults(spec, n, vectors, seed, max_sites, threads);
  }
  const std::string payload =
      runner->run_unit(fault_key(spec, n, vectors, seed, max_sites), [&] {
        return serialize_faults(compute_faults(spec, n, vectors, seed, max_sites, threads));
      });
  return parse_faults(payload);
}

}  // namespace realm::campaign
