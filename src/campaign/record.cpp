#include "realm/campaign/record.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace realm::campaign {

namespace {

// assert-only helper; compiled out under NDEBUG.
[[nodiscard]] [[maybe_unused]] bool clean_token(std::string_view s) noexcept {
  for (const char c : s) {
    if (c == '|' || c == '\n' || c == '\r') return false;
  }
  return true;
}

[[nodiscard]] std::string format_double(double value) {
  char buf[48];
  // %a round-trips every finite double exactly through strtod.
  std::snprintf(buf, sizeof buf, "%a", value);
  return buf;
}

}  // namespace

RequestKey::RequestKey(std::string_view kind) {
  assert(clean_token(kind));
  key_ = "realm-campaign/v";
  key_ += std::to_string(kCampaignSchemaVersion);
  key_ += '|';
  key_ += kind;
}

RequestKey& RequestKey::field(std::string_view name, std::string_view value) {
  assert(clean_token(name) && clean_token(value));
  key_ += '|';
  key_ += name;
  key_ += '=';
  key_ += value;
  return *this;
}

RequestKey& RequestKey::field(std::string_view name, std::int64_t value) {
  return field(name, std::string_view{std::to_string(value)});
}

RequestKey& RequestKey::field(std::string_view name, std::uint64_t value) {
  return field(name, std::string_view{std::to_string(value)});
}

RequestKey& RequestKey::field_hex(std::string_view name, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(value));
  return field(name, std::string_view{buf});
}

RequestKey& RequestKey::field(std::string_view name, double value) {
  return field(name, std::string_view{format_double(value)});
}

PayloadWriter& PayloadWriter::field(std::string_view name, double value) {
  text_ += name;
  text_ += '=';
  text_ += format_double(value);
  text_ += '\n';
  return *this;
}

PayloadWriter& PayloadWriter::field(std::string_view name, std::uint64_t value) {
  text_ += name;
  text_ += '=';
  text_ += std::to_string(value);
  text_ += '\n';
  return *this;
}

PayloadWriter& PayloadWriter::field(std::string_view name, std::int64_t value) {
  text_ += name;
  text_ += '=';
  text_ += std::to_string(value);
  text_ += '\n';
  return *this;
}

PayloadWriter& PayloadWriter::field_str(std::string_view name,
                                        std::string_view value) {
  assert(value.find('\n') == std::string_view::npos);
  text_ += name;
  text_ += '=';
  text_ += value;
  text_ += '\n';
  return *this;
}

PayloadReader::PayloadReader(std::string_view text) : text_{text} {
  std::size_t pos = 0;
  while (pos < text_.size()) {
    std::size_t eol = text_.find('\n', pos);
    if (eol == std::string::npos) eol = text_.size();
    const std::string_view line{text_.data() + pos, eol - pos};
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("campaign payload: malformed line '" +
                               std::string{line} + "'");
    }
    fields_.emplace_back(std::string{line.substr(0, eq)},
                         std::string{line.substr(eq + 1)});
  }
}

const std::string& PayloadReader::raw(std::string_view name) const {
  for (const auto& kv : fields_) {
    if (kv.first == name) return kv.second;
  }
  throw std::runtime_error("campaign payload: missing field '" + std::string{name} +
                           "'");
}

bool PayloadReader::has(std::string_view name) const {
  for (const auto& kv : fields_) {
    if (kv.first == name) return true;
  }
  return false;
}

const std::string& PayloadReader::get_string(std::string_view name) const {
  return raw(name);
}

double PayloadReader::get_double(std::string_view name) const {
  const std::string& v = raw(name);
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw std::runtime_error("campaign payload: bad double in '" + std::string{name} +
                             "=" + v + "'");
  }
  return d;
}

std::uint64_t PayloadReader::get_u64(std::string_view name) const {
  const std::string& v = raw(name);
  char* end = nullptr;
  const unsigned long long u = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || v[0] == '-') {
    throw std::runtime_error("campaign payload: bad u64 in '" + std::string{name} +
                             "=" + v + "'");
  }
  return u;
}

std::int64_t PayloadReader::get_i64(std::string_view name) const {
  const std::string& v = raw(name);
  char* end = nullptr;
  const long long i = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw std::runtime_error("campaign payload: bad i64 in '" + std::string{name} +
                             "=" + v + "'");
  }
  return i;
}

}  // namespace realm::campaign
