#include "realm/campaign/result_store.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "realm/obs/counters.hpp"
#include "realm/obs/histogram.hpp"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace realm::campaign {

namespace {

constexpr char kFileMagic[8] = {'R', 'E', 'A', 'L', 'M', 'S', 'T', '1'};
constexpr std::uint32_t kRecordMagic = 0x31524352u;  // "RCR1" little-endian
constexpr std::size_t kRecordHeaderBytes = 20;
// Sanity bounds: a length field beyond these is corruption, not a record
// (campaign keys are short strings, payloads a handful of lines).
constexpr std::uint32_t kMaxKeyLen = 1u << 20;
constexpr std::uint32_t kMaxPayloadLen = 1u << 26;

void put_le32(unsigned char* p, std::uint32_t v) noexcept {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

void put_le64(unsigned char* p, std::uint64_t v) noexcept {
  put_le32(p, static_cast<std::uint32_t>(v));
  put_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

[[nodiscard]] std::uint32_t get_le32(const unsigned char* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

[[nodiscard]] std::uint64_t get_le64(const unsigned char* p) noexcept {
  return static_cast<std::uint64_t>(get_le32(p)) |
         (static_cast<std::uint64_t>(get_le32(p + 4)) << 32);
}

[[nodiscard]] std::uint64_t fnv1a64_extend(std::uint64_t h,
                                           std::string_view bytes) noexcept {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Checksum over LE(key_len) . LE(payload_len) . key . payload.
[[nodiscard]] std::uint64_t record_checksum(std::string_view key,
                                            std::string_view payload) noexcept {
  unsigned char lens[8];
  put_le32(lens, static_cast<std::uint32_t>(key.size()));
  put_le32(lens + 4, static_cast<std::uint32_t>(payload.size()));
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a64_extend(h, std::string_view{reinterpret_cast<const char*>(lens), 8});
  h = fnv1a64_extend(h, key);
  h = fnv1a64_extend(h, payload);
  return h;
}

void fsync_file(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) {
    throw std::runtime_error("result store: flush failed for " + path);
  }
#ifndef _WIN32
  if (::fsync(::fileno(f)) != 0) {
    throw std::runtime_error("result store: fsync failed for " + path);
  }
#endif
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  return fnv1a64_extend(0xcbf29ce484222325ULL, bytes);
}

std::string content_hash_hex(std::string_view key) {
  static const char* digits = "0123456789abcdef";
  std::uint64_t h = fnv1a64(key);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[h & 0xF];
    h >>= 4;
  }
  return out;
}

ResultStore::ResultStore(std::string path, Mode mode)
    : path_{std::move(path)}, mode_{mode} {
  namespace fs = std::filesystem;
  if (mode_ == Mode::kReadWrite) {
    const fs::path parent = fs::path{path_}.parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      fs::create_directories(parent, ec);  // best effort; fopen reports failure
    }
    // "a+b" creates the journal if missing and never truncates an existing
    // one; reads and the append position are managed per-operation.
    file_ = std::fopen(path_.c_str(), "a+b");
  } else {
    file_ = std::fopen(path_.c_str(), "rb");
  }
  if (file_ == nullptr) {
    throw std::runtime_error("result store: cannot open " + path_);
  }
  std::lock_guard<std::mutex> lock{mu_};
  try {
    replay_journal_locked();
  } catch (...) {
    std::fclose(file_);
    file_ = nullptr;
    throw;
  }
}

ResultStore::~ResultStore() {
  if (file_ != nullptr) std::fclose(file_);
}

void ResultStore::replay_journal_locked() {
  std::fseek(file_, 0, SEEK_END);
  const long end_long = std::ftell(file_);
  const std::uint64_t file_size = end_long > 0 ? static_cast<std::uint64_t>(end_long) : 0;
  std::fseek(file_, 0, SEEK_SET);

  if (file_size == 0) {
    if (mode_ == Mode::kReadWrite) {
      if (std::fwrite(kFileMagic, 1, sizeof kFileMagic, file_) != sizeof kFileMagic) {
        throw std::runtime_error("result store: cannot write header to " + path_);
      }
      fsync_file(file_, path_);
      stats_.bytes_on_open = sizeof kFileMagic;
    }
    return;
  }

  char magic[sizeof kFileMagic];
  if (file_size < sizeof kFileMagic ||
      std::fread(magic, 1, sizeof kFileMagic, file_) != sizeof kFileMagic ||
      std::memcmp(magic, kFileMagic, sizeof kFileMagic) != 0) {
    // A short file could be our own torn header, but a wrong 8-byte magic
    // means this is some other file — refuse rather than truncate it.
    if (file_size >= sizeof kFileMagic) {
      throw std::runtime_error("result store: " + path_ +
                               " is not a realm campaign store (bad magic)");
    }
    if (mode_ == Mode::kReadWrite) {
      // Torn header from a crash during creation: restart the journal.
#ifndef _WIN32
      if (::ftruncate(::fileno(file_), 0) != 0) {
        throw std::runtime_error("result store: cannot truncate " + path_);
      }
#endif
      std::fseek(file_, 0, SEEK_SET);
      if (std::fwrite(kFileMagic, 1, sizeof kFileMagic, file_) != sizeof kFileMagic) {
        throw std::runtime_error("result store: cannot write header to " + path_);
      }
      fsync_file(file_, path_);
      stats_.torn_bytes_dropped = file_size;
    }
    stats_.bytes_on_open = sizeof kFileMagic;
    return;
  }

  std::uint64_t good_end = sizeof kFileMagic;
  std::string key;
  std::string payload;
  while (true) {
    unsigned char header[kRecordHeaderBytes];
    const std::size_t got = std::fread(header, 1, kRecordHeaderBytes, file_);
    if (got == 0) break;  // clean EOF
    if (got < kRecordHeaderBytes) break;  // torn header
    const std::uint32_t rec_magic = get_le32(header);
    const std::uint32_t key_len = get_le32(header + 4);
    const std::uint32_t payload_len = get_le32(header + 8);
    const std::uint64_t checksum = get_le64(header + 12);
    if (rec_magic != kRecordMagic || key_len == 0 || key_len > kMaxKeyLen ||
        payload_len > kMaxPayloadLen) {
      break;  // corrupt header
    }
    key.resize(key_len);
    payload.resize(payload_len);
    if (std::fread(key.data(), 1, key_len, file_) != key_len) break;
    if (payload_len > 0 &&
        std::fread(payload.data(), 1, payload_len, file_) != payload_len) {
      break;  // torn body
    }
    if (record_checksum(key, payload) != checksum) break;  // corrupt body

    auto [it, inserted] = index_.try_emplace(key);
    if (inserted) it->second.order = next_order_++;
    it->second.payload = payload;  // latest record wins
    ++stats_.records_replayed;
    good_end += kRecordHeaderBytes + key_len + payload_len;
  }

  stats_.bytes_on_open = good_end;
  stats_.torn_bytes_dropped = file_size - good_end;
  obs::counter_add(obs::Counter::kStoreBytesRead, good_end);

  if (stats_.torn_bytes_dropped > 0 && mode_ == Mode::kReadWrite) {
#ifndef _WIN32
    if (::ftruncate(::fileno(file_), static_cast<off_t>(good_end)) != 0) {
      throw std::runtime_error("result store: cannot truncate torn tail of " + path_);
    }
#endif
  }
  // Leave the stream positioned at the recovered end for appends.
  std::fseek(file_, static_cast<long>(good_end), SEEK_SET);
}

std::optional<std::string> ResultStore::get(const std::string& key) {
  std::lock_guard<std::mutex> lock{mu_};
  const auto it = index_.find(key);
  if (it == index_.end()) {
    obs::counter_add(obs::Counter::kStoreMisses, 1);
    return std::nullopt;
  }
  obs::counter_add(obs::Counter::kStoreHits, 1);
  return it->second.payload;
}

void ResultStore::put(const std::string& key, const std::string& payload) {
  if (key.empty()) throw std::runtime_error("result store: empty key");
  std::lock_guard<std::mutex> lock{mu_};
  if (mode_ != Mode::kReadWrite) {
    throw std::runtime_error("result store: put() on read-only store " + path_);
  }
  append_record_locked(key, payload);
  auto [it, inserted] = index_.try_emplace(key);
  if (inserted) it->second.order = next_order_++;
  it->second.payload = payload;
}

void ResultStore::append_record_locked(const std::string& key,
                                       const std::string& payload) {
  unsigned char header[kRecordHeaderBytes];
  put_le32(header, kRecordMagic);
  put_le32(header + 4, static_cast<std::uint32_t>(key.size()));
  put_le32(header + 8, static_cast<std::uint32_t>(payload.size()));
  put_le64(header + 12, record_checksum(key, payload));
  std::fseek(file_, 0, SEEK_END);
  if (std::fwrite(header, 1, kRecordHeaderBytes, file_) != kRecordHeaderBytes ||
      std::fwrite(key.data(), 1, key.size(), file_) != key.size() ||
      (!payload.empty() &&
       std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size())) {
    throw std::runtime_error("result store: append failed for " + path_);
  }
  fsync_file(file_, path_);
  const std::uint64_t bytes = kRecordHeaderBytes + key.size() + payload.size();
  ++stats_.records_appended;
  stats_.bytes_appended += bytes;
  obs::counter_add(obs::Counter::kStoreBytesWritten, bytes);
  // Record-size distribution: an outlier payload (schema drift, a runaway
  // histogram dump) shows up in the p99 long before it fills the journal.
  obs::value_hist_record(obs::ValueHist::kStoreRecordBytes, bytes);
}

bool ResultStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock{mu_};
  return index_.count(key) != 0;
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock{mu_};
  return index_.size();
}

std::vector<std::string> ResultStore::keys() const {
  std::lock_guard<std::mutex> lock{mu_};
  std::vector<const std::pair<const std::string, Entry>*> live;
  live.reserve(index_.size());
  for (const auto& kv : index_) live.push_back(&kv);
  std::sort(live.begin(), live.end(),
            [](const auto* a, const auto* b) { return a->second.order < b->second.order; });
  std::vector<std::string> out;
  out.reserve(live.size());
  for (const auto* kv : live) out.push_back(kv->first);
  return out;
}

ResultStore::Stats ResultStore::stats() const {
  std::lock_guard<std::mutex> lock{mu_};
  Stats s = stats_;
  s.records_live = index_.size();
  return s;
}

std::uint64_t ResultStore::compact() {
  std::lock_guard<std::mutex> lock{mu_};
  if (mode_ != Mode::kReadWrite) {
    throw std::runtime_error("result store: compact() on read-only store " + path_);
  }
  const std::uint64_t total =
      stats_.records_replayed + stats_.records_appended;
  const std::uint64_t dropped =
      total > index_.size() ? total - index_.size() : 0;

  const std::string tmp_path = path_ + ".compact.tmp";
  std::FILE* tmp = std::fopen(tmp_path.c_str(), "wb");
  if (tmp == nullptr) {
    throw std::runtime_error("result store: cannot create " + tmp_path);
  }
  try {
    if (std::fwrite(kFileMagic, 1, sizeof kFileMagic, tmp) != sizeof kFileMagic) {
      throw std::runtime_error("result store: cannot write header to " + tmp_path);
    }
    // Stable first-seen order keeps listings and replay deterministic.
    std::vector<const std::pair<const std::string, Entry>*> live;
    live.reserve(index_.size());
    for (const auto& kv : index_) live.push_back(&kv);
    std::sort(live.begin(), live.end(), [](const auto* a, const auto* b) {
      return a->second.order < b->second.order;
    });
    for (const auto* kv : live) {
      const std::string& key = kv->first;
      const std::string& payload = kv->second.payload;
      unsigned char header[kRecordHeaderBytes];
      put_le32(header, kRecordMagic);
      put_le32(header + 4, static_cast<std::uint32_t>(key.size()));
      put_le32(header + 8, static_cast<std::uint32_t>(payload.size()));
      put_le64(header + 12, record_checksum(key, payload));
      if (std::fwrite(header, 1, kRecordHeaderBytes, tmp) != kRecordHeaderBytes ||
          std::fwrite(key.data(), 1, key.size(), tmp) != key.size() ||
          (!payload.empty() &&
           std::fwrite(payload.data(), 1, payload.size(), tmp) != payload.size())) {
        throw std::runtime_error("result store: compact write failed for " + tmp_path);
      }
    }
    fsync_file(tmp, tmp_path);
  } catch (...) {
    std::fclose(tmp);
    std::remove(tmp_path.c_str());
    throw;
  }
  std::fclose(tmp);

  std::fclose(file_);
  file_ = nullptr;
  std::error_code ec;
  std::filesystem::rename(tmp_path, path_, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    // Reopen the original journal so the store stays usable.
    file_ = std::fopen(path_.c_str(), "a+b");
    throw std::runtime_error("result store: rename failed for " + tmp_path + ": " +
                             ec.message());
  }
  file_ = std::fopen(path_.c_str(), "a+b");
  if (file_ == nullptr) {
    throw std::runtime_error("result store: cannot reopen " + path_ + " after compact");
  }
  std::fseek(file_, 0, SEEK_END);
  // Replayed/appended tallies now describe the compacted journal.
  stats_.records_replayed = index_.size();
  stats_.records_appended = 0;
  stats_.bytes_appended = 0;
  return dropped;
}

}  // namespace realm::campaign
