#include "realm/campaign/runner.hpp"

#include <cstdio>
#include <cstdlib>

#include "realm/obs/counters.hpp"
#include "realm/obs/trace.hpp"

namespace realm::campaign {

namespace {

// Process-wide computed-unit tally for the crash-injection hook, so the
// injected kill is deterministic even if a bench builds several runners.
std::atomic<std::uint64_t> g_computed_units{0};

[[nodiscard]] std::uint64_t crash_after_from_env() noexcept {
  const char* env = std::getenv("REALM_CAMPAIGN_CRASH_AFTER");
  if (env == nullptr || env[0] == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return v;
}

}  // namespace

CampaignRunner::CampaignRunner(ResultStore* store, bool resume)
    : store_{store}, resume_{resume}, crash_after_{crash_after_from_env()} {}

std::string CampaignRunner::run_unit(const std::string& key,
                                     const std::function<std::string()>& compute) {
  if (resume_) {
    if (auto cached = store_->get(key)) {
      resumed_.fetch_add(1, std::memory_order_relaxed);
      obs::counter_add(obs::Counter::kCampaignUnitsResumed, 1);
      return *cached;
    }
  }
  std::string payload;
  {
    REALM_TRACE_SCOPE("campaign/unit");
    payload = compute();
  }
  store_->put(key, payload);  // durable (fsync'd) before the unit counts
  computed_.fetch_add(1, std::memory_order_relaxed);
  obs::counter_add(obs::Counter::kCampaignUnitsComputed, 1);
  const std::uint64_t done = g_computed_units.fetch_add(1, std::memory_order_relaxed) + 1;
  if (crash_after_ != 0 && done >= crash_after_) {
    std::fprintf(stderr,
                 "campaign: injected crash after %llu computed units "
                 "(REALM_CAMPAIGN_CRASH_AFTER)\n",
                 static_cast<unsigned long long>(done));
    std::_Exit(kCrashExitCode);  // simulate kill -9: no destructors, no flushes
  }
  return payload;
}

std::uint64_t CampaignRunner::units_resumed() const noexcept {
  return resumed_.load(std::memory_order_relaxed);
}

std::uint64_t CampaignRunner::units_computed() const noexcept {
  return computed_.load(std::memory_order_relaxed);
}

}  // namespace realm::campaign
