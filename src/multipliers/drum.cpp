#include "realm/multipliers/drum.hpp"

#include <cassert>
#include <stdexcept>

#include "realm/numeric/bits.hpp"

namespace realm::mult {

DrumMultiplier::DrumMultiplier(int n, int k) : n_{n}, k_{k} {
  if (n < 2 || n > 31) throw std::invalid_argument("DrumMultiplier: N in [2, 31]");
  if (k < 3 || k > n) throw std::invalid_argument("DrumMultiplier: k in [3, N]");
}

std::uint64_t DrumMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  if (a == 0 || b == 0) return 0;

  const auto fragment = [this](std::uint64_t v) -> std::pair<std::uint64_t, int> {
    const int k = num::leading_one(v);
    if (k < k_) return {v, 0};  // already fits the small multiplier
    const int shift = k - k_ + 1;
    return {(v >> shift) | 1u, shift};  // forced-1 LSB unbiases truncation
  };
  const auto [fa, sa] = fragment(a);
  const auto [fb, sb] = fragment(b);
  return (fa * fb) << (sa + sb);
}

std::string DrumMultiplier::name() const { return "DRUM (k=" + std::to_string(k_) + ")"; }

}  // namespace realm::mult
