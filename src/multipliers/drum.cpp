#include "realm/multipliers/drum.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "realm/numeric/bits.hpp"
#include "realm/numeric/simd.hpp"

namespace realm::mult {
namespace {

// Row-hoisted kernel: the fixed operand's fragment fa and shift sa are
// scalar parameters, so the loop is the b-side fragment extraction, one
// multiply and one variable shift.  kth = k - 1 so a shift is needed
// exactly when the leading one is at position >= k.
REALM_MULTIVERSION
void drum_row_batch_kernel(const std::uint64_t* __restrict b,
                           std::uint64_t* __restrict out, std::size_t n,
                           std::uint64_t fa, std::uint64_t sa, std::int64_t kth) {
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint64_t b0 = b[idx];
    const std::uint64_t bv = b0 | static_cast<std::uint64_t>(b0 == 0);
    const auto kb = static_cast<std::int64_t>(
        63u - static_cast<std::uint64_t>(std::countl_zero(bv)));
    const std::int64_t sh_s = kb - kth;
    const std::uint64_t sb = sh_s > 0 ? static_cast<std::uint64_t>(sh_s) : 0;
    const std::uint64_t fb = (bv >> sb) | static_cast<std::uint64_t>(sb != 0);
    const std::uint64_t val = (fa * fb) << (sa + sb);
    out[idx] = (b0 != 0) ? val : 0;
  }
}

// Contiguous-column segment with constant leading-one position: the
// fragment shift and forced LSB are loop-invariant, leaving one multiply
// and one constant shift per element.
REALM_MULTIVERSION
void drum_row_segment_kernel(std::uint64_t b_first, std::uint64_t* __restrict out,
                             std::size_t n, std::uint64_t fa, std::uint64_t sb,
                             std::uint64_t force1, std::uint64_t total_shift) {
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint64_t fb = ((b_first + idx) >> sb) | force1;
    out[idx] = (fa * fb) << total_shift;
  }
}

}  // namespace

DrumMultiplier::DrumMultiplier(int n, int k) : n_{n}, k_{k} {
  if (n < 2 || n > 31) throw std::invalid_argument("DrumMultiplier: N in [2, 31]");
  if (k < 3 || k > n) throw std::invalid_argument("DrumMultiplier: k in [3, N]");
}

std::uint64_t DrumMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  if (a == 0 || b == 0) return 0;

  const auto fragment = [this](std::uint64_t v) -> std::pair<std::uint64_t, int> {
    const int k = num::leading_one(v);
    if (k < k_) return {v, 0};  // already fits the small multiplier
    const int shift = k - k_ + 1;
    return {(v >> shift) | 1u, shift};  // forced-1 LSB unbiases truncation
  };
  const auto [fa, sa] = fragment(a);
  const auto [fb, sb] = fragment(b);
  return (fa * fb) << (sa + sb);
}

void DrumMultiplier::multiply_row_batch(std::uint64_t a_fixed, const std::uint64_t* b,
                                        std::uint64_t* out, std::size_t n) const {
  assert(num::fits(a_fixed, n_));
  if (a_fixed == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const int ka = num::leading_one(a_fixed);
  const int sa = ka < k_ ? 0 : ka - k_ + 1;
  const std::uint64_t fa =
      sa == 0 ? a_fixed : ((a_fixed >> sa) | 1u);
  drum_row_batch_kernel(b, out, n, fa, static_cast<std::uint64_t>(sa),
                        static_cast<std::int64_t>(k_ - 1));
}

void DrumMultiplier::multiply_row_range(std::uint64_t a_fixed, std::uint64_t b0,
                                        std::uint64_t* out, std::size_t n) const {
  assert(num::fits(a_fixed, n_) && (n == 0 || num::fits(b0 + n - 1, n_)));
  if (n == 0) return;
  if (a_fixed == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const int ka = num::leading_one(a_fixed);
  const int sa = ka < k_ ? 0 : ka - k_ + 1;
  const std::uint64_t fa = sa == 0 ? a_fixed : ((a_fixed >> sa) | 1u);

  std::uint64_t b = b0;
  const std::uint64_t last = b0 + n - 1;
  if (b == 0) {
    out[0] = 0;
    if (n == 1) return;
    b = 1;
  }
  while (b <= last) {
    const int kb = num::leading_one(b);
    const std::uint64_t seg_last = std::min(last, (std::uint64_t{2} << kb) - 1);
    const int sb = kb < k_ ? 0 : kb - k_ + 1;
    drum_row_segment_kernel(b, out + (b - b0),
                            static_cast<std::size_t>(seg_last - b + 1), fa,
                            static_cast<std::uint64_t>(sb),
                            static_cast<std::uint64_t>(sb != 0),
                            static_cast<std::uint64_t>(sa + sb));
    b = seg_last + 1;
  }
}

std::string DrumMultiplier::name() const { return "DRUM (k=" + std::to_string(k_) + ")"; }

}  // namespace realm::mult
