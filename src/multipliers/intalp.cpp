#include "realm/multipliers/intalp.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "realm/numeric/bits.hpp"
#include "realm/numeric/int128.hpp"
#include "realm/numeric/quadrature.hpp"

namespace realm::mult {
namespace {

// Level-1 plane approximation of xy: tight upper planes per x+y comparator
// side, P1 = (x+y)/4 below the diagonal and (3(x+y) - 2)/4 above it.
double level1_plane(double x, double y) {
  const double s = x + y;
  return s < 1.0 ? 0.25 * s : 0.25 * (3.0 * s - 2.0);
}

// Least-squares plane fit of f over [x0,x1]×[y0,y1] via the 3×3 normal
// equations, solved with Cramer's rule.
std::array<double, 3> fit_plane(const num::Fn2& f, double x0, double x1, double y0,
                                double y1) {
  const auto I = [&](const num::Fn2& g) {
    return num::integrate2d(g, x0, x1, y0, y1, 1e-10);
  };
  const double sxx = I([](double x, double) { return x * x; });
  const double sxy = I([](double x, double y) { return x * y; });
  const double sx = I([](double x, double) { return x; });
  const double syy = I([](double, double y) { return y * y; });
  const double sy = I([](double, double y) { return y; });
  const double s1 = I([](double, double) { return 1.0; });
  const double rx = I([&](double x, double y) { return f(x, y) * x; });
  const double ry = I([&](double x, double y) { return f(x, y) * y; });
  const double r1 = I(f);

  const auto det3 = [](double a, double b, double c, double d, double e, double g,
                       double h, double i, double j) {
    return a * (e * j - g * i) - b * (d * j - g * h) + c * (d * i - e * h);
  };
  const double det = det3(sxx, sxy, sx, sxy, syy, sy, sx, sy, s1);
  const double da = det3(rx, sxy, sx, ry, syy, sy, r1, sy, s1);
  const double db = det3(sxx, rx, sx, sxy, ry, sy, sx, r1, s1);
  const double dc = det3(sxx, sxy, rx, sxy, syy, ry, sx, sy, r1);
  return {da / det, db / det, dc / det};
}

}  // namespace

IntAlpMultiplier::IntAlpMultiplier(int n, int level) : n_{n}, level_{level} {
  if (n < 3 || n > 24) throw std::invalid_argument("IntAlpMultiplier: N in [3, 24]");
  if (level != 1 && level != 2) throw std::invalid_argument("IntAlpMultiplier: level 1 or 2");
  if (level_ == 2) {
    // Residual of level 1, fitted per (x, y) MSB quadrant and quantized.
    // The residual is symmetric in (x, y), so the off-diagonal quadrant
    // reuses the mirrored coefficients — this keeps the quantized design
    // commutative (independent rounding could differ by an LSB).
    const auto residual = [](double x, double y) { return x * y - level1_plane(x, y); };
    const double scale = std::ldexp(1.0, kCoeffBits);
    for (int qx = 0; qx < 2; ++qx) {
      for (int qy = 0; qy <= qx; ++qy) {
        const auto p = fit_plane(residual, 0.5 * qx, 0.5 * (qx + 1), 0.5 * qy,
                                 0.5 * (qy + 1));
        const Plane plane{static_cast<std::int64_t>(std::lround(p[0] * scale)),
                          static_cast<std::int64_t>(std::lround(p[1] * scale)),
                          static_cast<std::int64_t>(std::lround(p[2] * scale))};
        quadrant_planes_[static_cast<std::size_t>(qx * 2 + qy)] = plane;
        quadrant_planes_[static_cast<std::size_t>(qy * 2 + qx)] = {plane.ay, plane.ax,
                                                                   plane.c};
      }
    }
  }
}

std::uint64_t IntAlpMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  if (a == 0 || b == 0) return 0;

  const int w = n_ - 1;
  const int ka = num::leading_one(a);
  const int kb = num::leading_one(b);
  const std::int64_t xf =
      static_cast<std::int64_t>((a ^ (std::uint64_t{1} << ka)) << (w - ka));
  const std::int64_t yf =
      static_cast<std::int64_t>((b ^ (std::uint64_t{1} << kb)) << (w - kb));

  // Level-1 plane, evaluated in Q(w): the comparator is the fraction-sum MSB.
  const std::int64_t s = xf + yf;
  const std::int64_t one = std::int64_t{1} << w;
  std::int64_t p = (s < one) ? (s >> 2) : ((3 * s - 2 * one) >> 2);

  if (level_ == 2) {
    const auto qx = static_cast<int>((xf >> (w - 1)) & 1);
    const auto qy = static_cast<int>((yf >> (w - 1)) & 1);
    const Plane& pl = quadrant_planes_[static_cast<std::size_t>(qx * 2 + qy)];
    p += (pl.ax * xf + pl.ay * yf + pl.c * one) >> kCoeffBits;
  }

  // C~ = 2^(ka+kb) · (1 + x + y + p).  The significand stays positive
  // (level-2 corrections are tiny relative to 1), widest value < 4·2^w.
  const std::int64_t significand = one + s + p;
  assert(significand > 0);
  const int k_sum = ka + kb;
  const auto sig128 = static_cast<num::uint128>(significand);
  if (k_sum >= w) return static_cast<std::uint64_t>(sig128 << (k_sum - w));
  return static_cast<std::uint64_t>(sig128 >> (w - k_sum));
}

std::string IntAlpMultiplier::name() const {
  return "IntALP (L=" + std::to_string(level_) + ")";
}

}  // namespace realm::mult
