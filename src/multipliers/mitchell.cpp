#include "realm/multipliers/mitchell.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "realm/numeric/bits.hpp"
#include "realm/numeric/simd.hpp"

namespace realm::mult {
namespace {

// Branchless form of the scalar datapath, all per-element values in 64-bit
// lanes so the loop auto-vectorizes: zero operands run through as if they
// were 1 and the result is blended to 0, and the normalize step uses
// (av << (w - ka)) ^ (1 << w) — the leading one always lands on bit w, so
// the clearing mask is loop-invariant.  With f = 0 (t = N-1), mask(0) = 0
// makes frac 0 and c_of = fsum, matching the scalar path's special case.
REALM_MULTIVERSION
void mitchell_batch_kernel(const std::uint64_t* __restrict a,
                           const std::uint64_t* __restrict b,
                           std::uint64_t* __restrict out, std::size_t n,
                           std::uint64_t w, std::uint64_t t, std::uint64_t f,
                           std::uint64_t fmask, std::uint64_t one_f,
                           std::uint64_t one_w) {
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint64_t a0 = a[idx];
    const std::uint64_t b0 = b[idx];
    const std::uint64_t av = a0 | static_cast<std::uint64_t>(a0 == 0);
    const std::uint64_t bv = b0 | static_cast<std::uint64_t>(b0 == 0);
    const auto ka = 63u - static_cast<std::uint64_t>(std::countl_zero(av));
    const auto kb = 63u - static_cast<std::uint64_t>(std::countl_zero(bv));
    const std::uint64_t xf = ((av << (w - ka)) ^ one_w) >> t;
    const std::uint64_t yf = ((bv << (w - kb)) ^ one_w) >> t;

    const std::uint64_t fsum = xf + yf;
    const std::uint64_t c_of = fsum >> f;
    const std::uint64_t frac = fsum & fmask;

    const std::uint64_t significand = one_f | frac;
    // Both shift directions computed at masked (in-range) amounts so the
    // select if-converts to a blend; |d| < 64 always.
    const auto d = static_cast<std::int64_t>(ka + kb + c_of) -
                   static_cast<std::int64_t>(f);
    const std::uint64_t shl = significand << (static_cast<std::uint64_t>(d) & 63u);
    const std::uint64_t shr = significand >> (static_cast<std::uint64_t>(-d) & 63u);
    const std::uint64_t val = (d >= 0) ? shl : shr;
    out[idx] = ((a0 != 0) & (b0 != 0)) ? val : 0;
  }
}

// Row-hoisted variant: the fixed operand's ka and truncated fraction are
// scalar parameters (dbase = ka - f), leaving only the b-side LOD chain,
// one add and the final shift in the loop.
REALM_MULTIVERSION
void mitchell_row_batch_kernel(const std::uint64_t* __restrict b,
                               std::uint64_t* __restrict out, std::size_t n,
                               std::uint64_t w, std::uint64_t t, std::uint64_t f,
                               std::uint64_t fmask, std::uint64_t one_f,
                               std::uint64_t one_w, std::uint64_t xf,
                               std::int64_t dbase) {
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint64_t b0 = b[idx];
    const std::uint64_t bv = b0 | static_cast<std::uint64_t>(b0 == 0);
    const auto kb = 63u - static_cast<std::uint64_t>(std::countl_zero(bv));
    const std::uint64_t yf = ((bv << (w - kb)) ^ one_w) >> t;

    const std::uint64_t fsum = xf + yf;
    const std::uint64_t c_of = fsum >> f;
    const std::uint64_t frac = fsum & fmask;

    const std::uint64_t significand = one_f | frac;
    const auto d = dbase + static_cast<std::int64_t>(kb + c_of);
    const std::uint64_t shl = significand << (static_cast<std::uint64_t>(d) & 63u);
    const std::uint64_t shr = significand >> (static_cast<std::uint64_t>(-d) & 63u);
    const std::uint64_t val = (d >= 0) ? shl : shr;
    out[idx] = (b0 != 0) ? val : 0;
  }
}

// Contiguous-column segment with constant kb: no LOD, fixed normalize shift,
// and the final barrel shift reduced to two constant (shl, shr) pairs
// selected by the fraction carry c_of in {0, 1}.
REALM_MULTIVERSION
void mitchell_row_segment_kernel(std::uint64_t b_first,
                                 std::uint64_t* __restrict out, std::size_t n,
                                 std::uint64_t norm_shift, std::uint64_t t,
                                 std::uint64_t f, std::uint64_t fmask,
                                 std::uint64_t one_f, std::uint64_t one_w,
                                 std::uint64_t xf, std::uint64_t shl0,
                                 std::uint64_t shr0, std::uint64_t shl1,
                                 std::uint64_t shr1) {
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint64_t bb = b_first + idx;
    const std::uint64_t yf = ((bb << norm_shift) ^ one_w) >> t;
    const std::uint64_t fsum = xf + yf;
    const std::uint64_t c_of = fsum >> f;
    const std::uint64_t significand = one_f | (fsum & fmask);
    const std::uint64_t v0 = (significand << shl0) >> shr0;
    const std::uint64_t v1 = (significand << shl1) >> shr1;
    out[idx] = (c_of != 0) ? v1 : v0;
  }
}

constexpr void shift_pair(std::int64_t d, std::uint64_t& shl, std::uint64_t& shr) {
  shl = d >= 0 ? static_cast<std::uint64_t>(d) : 0;
  shr = d >= 0 ? 0 : static_cast<std::uint64_t>(-d);
}

}  // namespace

MitchellMultiplier::MitchellMultiplier(int n, int t) : n_{n}, t_{t} {
  if (n < 2 || n > 31) throw std::invalid_argument("MitchellMultiplier: N in [2, 31]");
  if (t < 0 || t > n - 1) throw std::invalid_argument("MitchellMultiplier: t in [0, N-1]");
}

std::uint64_t MitchellMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  if (a == 0 || b == 0) return 0;

  const int w = n_ - 1;
  const int f = w - t_;
  const int ka = num::leading_one(a);
  const int kb = num::leading_one(b);
  const std::uint64_t xf = ((a ^ (std::uint64_t{1} << ka)) << (w - ka)) >> t_;
  const std::uint64_t yf = ((b ^ (std::uint64_t{1} << kb)) << (w - kb)) >> t_;

  // Eq. 3: both branches collapse to (1.frac) · 2^(ka+kb+carry) because
  // x + y >= 1 means x + y = 1 + frac.
  const std::uint64_t fsum = xf + yf;
  const std::uint64_t c_of = f > 0 ? (fsum >> f) : fsum;
  const std::uint64_t frac = f > 0 ? (fsum & num::mask(f)) : 0;
  const int k_sum = ka + kb + static_cast<int>(c_of);

  const std::uint64_t significand = (std::uint64_t{1} << f) | frac;
  if (k_sum >= f) return significand << (k_sum - f);
  return significand >> (f - k_sum);
}

void MitchellMultiplier::multiply_batch(const std::uint64_t* a, const std::uint64_t* b,
                                        std::uint64_t* out, std::size_t n) const {
  const auto w = static_cast<std::uint64_t>(n_ - 1);
  const auto f = static_cast<std::uint64_t>(n_ - 1 - t_);
  mitchell_batch_kernel(a, b, out, n, w, static_cast<std::uint64_t>(t_), f,
                        num::mask(static_cast<int>(f)), std::uint64_t{1} << f,
                        std::uint64_t{1} << w);
}

void MitchellMultiplier::multiply_row_batch(std::uint64_t a_fixed,
                                            const std::uint64_t* b,
                                            std::uint64_t* out, std::size_t n) const {
  assert(num::fits(a_fixed, n_));
  if (a_fixed == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const int w = n_ - 1;
  const int f = w - t_;
  const int ka = num::leading_one(a_fixed);
  const std::uint64_t xf =
      ((a_fixed ^ (std::uint64_t{1} << ka)) << (w - ka)) >> t_;
  mitchell_row_batch_kernel(
      b, out, n, static_cast<std::uint64_t>(w), static_cast<std::uint64_t>(t_),
      static_cast<std::uint64_t>(f), num::mask(f), std::uint64_t{1} << f,
      std::uint64_t{1} << w, xf,
      static_cast<std::int64_t>(ka) - static_cast<std::int64_t>(f));
}

void MitchellMultiplier::multiply_row_range(std::uint64_t a_fixed, std::uint64_t b0,
                                            std::uint64_t* out, std::size_t n) const {
  assert(num::fits(a_fixed, n_) && (n == 0 || num::fits(b0 + n - 1, n_)));
  if (n == 0) return;
  if (a_fixed == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const int w = n_ - 1;
  const int f = w - t_;
  const int ka = num::leading_one(a_fixed);
  const std::uint64_t xf =
      ((a_fixed ^ (std::uint64_t{1} << ka)) << (w - ka)) >> t_;

  std::uint64_t b = b0;
  const std::uint64_t last = b0 + n - 1;
  if (b == 0) {
    out[0] = 0;
    if (n == 1) return;
    b = 1;
  }
  while (b <= last) {
    const int kb = num::leading_one(b);
    const std::uint64_t seg_last = std::min(last, (std::uint64_t{2} << kb) - 1);
    const std::int64_t d0 =
        static_cast<std::int64_t>(ka + kb) - static_cast<std::int64_t>(f);
    std::uint64_t shl0 = 0, shr0 = 0, shl1 = 0, shr1 = 0;
    shift_pair(d0, shl0, shr0);
    shift_pair(d0 + 1, shl1, shr1);
    mitchell_row_segment_kernel(
        b, out + (b - b0), static_cast<std::size_t>(seg_last - b + 1),
        static_cast<std::uint64_t>(w - kb), static_cast<std::uint64_t>(t_),
        static_cast<std::uint64_t>(f), num::mask(f), std::uint64_t{1} << f,
        std::uint64_t{1} << w, xf, shl0, shr0, shl1, shr1);
    b = seg_last + 1;
  }
}

std::string MitchellMultiplier::name() const {
  return t_ == 0 ? "cALM" : "cALM (t=" + std::to_string(t_) + ")";
}

}  // namespace realm::mult
