#include "realm/multipliers/mitchell.hpp"

#include <cassert>
#include <stdexcept>

#include "realm/numeric/bits.hpp"
#include "realm/numeric/simd.hpp"

namespace realm::mult {
namespace {

// Branchless form of the scalar datapath, all per-element values in 64-bit
// lanes so the loop auto-vectorizes: zero operands run through as if they
// were 1 and the result is blended to 0, and the normalize step uses
// (av << (w - ka)) ^ (1 << w) — the leading one always lands on bit w, so
// the clearing mask is loop-invariant.  With f = 0 (t = N-1), mask(0) = 0
// makes frac 0 and c_of = fsum, matching the scalar path's special case.
REALM_MULTIVERSION
void mitchell_batch_kernel(const std::uint64_t* __restrict a,
                           const std::uint64_t* __restrict b,
                           std::uint64_t* __restrict out, std::size_t n,
                           std::uint64_t w, std::uint64_t t, std::uint64_t f,
                           std::uint64_t fmask, std::uint64_t one_f,
                           std::uint64_t one_w) {
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint64_t a0 = a[idx];
    const std::uint64_t b0 = b[idx];
    const std::uint64_t av = a0 | static_cast<std::uint64_t>(a0 == 0);
    const std::uint64_t bv = b0 | static_cast<std::uint64_t>(b0 == 0);
    const auto ka = 63u - static_cast<std::uint64_t>(std::countl_zero(av));
    const auto kb = 63u - static_cast<std::uint64_t>(std::countl_zero(bv));
    const std::uint64_t xf = ((av << (w - ka)) ^ one_w) >> t;
    const std::uint64_t yf = ((bv << (w - kb)) ^ one_w) >> t;

    const std::uint64_t fsum = xf + yf;
    const std::uint64_t c_of = fsum >> f;
    const std::uint64_t frac = fsum & fmask;

    const std::uint64_t significand = one_f | frac;
    // Both shift directions computed at masked (in-range) amounts so the
    // select if-converts to a blend; |d| < 64 always.
    const auto d = static_cast<std::int64_t>(ka + kb + c_of) -
                   static_cast<std::int64_t>(f);
    const std::uint64_t shl = significand << (static_cast<std::uint64_t>(d) & 63u);
    const std::uint64_t shr = significand >> (static_cast<std::uint64_t>(-d) & 63u);
    const std::uint64_t val = (d >= 0) ? shl : shr;
    out[idx] = ((a0 != 0) & (b0 != 0)) ? val : 0;
  }
}

}  // namespace

MitchellMultiplier::MitchellMultiplier(int n, int t) : n_{n}, t_{t} {
  if (n < 2 || n > 31) throw std::invalid_argument("MitchellMultiplier: N in [2, 31]");
  if (t < 0 || t > n - 1) throw std::invalid_argument("MitchellMultiplier: t in [0, N-1]");
}

std::uint64_t MitchellMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  if (a == 0 || b == 0) return 0;

  const int w = n_ - 1;
  const int f = w - t_;
  const int ka = num::leading_one(a);
  const int kb = num::leading_one(b);
  const std::uint64_t xf = ((a ^ (std::uint64_t{1} << ka)) << (w - ka)) >> t_;
  const std::uint64_t yf = ((b ^ (std::uint64_t{1} << kb)) << (w - kb)) >> t_;

  // Eq. 3: both branches collapse to (1.frac) · 2^(ka+kb+carry) because
  // x + y >= 1 means x + y = 1 + frac.
  const std::uint64_t fsum = xf + yf;
  const std::uint64_t c_of = f > 0 ? (fsum >> f) : fsum;
  const std::uint64_t frac = f > 0 ? (fsum & num::mask(f)) : 0;
  const int k_sum = ka + kb + static_cast<int>(c_of);

  const std::uint64_t significand = (std::uint64_t{1} << f) | frac;
  if (k_sum >= f) return significand << (k_sum - f);
  return significand >> (f - k_sum);
}

void MitchellMultiplier::multiply_batch(const std::uint64_t* a, const std::uint64_t* b,
                                        std::uint64_t* out, std::size_t n) const {
  const auto w = static_cast<std::uint64_t>(n_ - 1);
  const auto f = static_cast<std::uint64_t>(n_ - 1 - t_);
  mitchell_batch_kernel(a, b, out, n, w, static_cast<std::uint64_t>(t_), f,
                        num::mask(static_cast<int>(f)), std::uint64_t{1} << f,
                        std::uint64_t{1} << w);
}

std::string MitchellMultiplier::name() const {
  return t_ == 0 ? "cALM" : "cALM (t=" + std::to_string(t_) + ")";
}

}  // namespace realm::mult
