#include "realm/multipliers/mitchell.hpp"

#include <cassert>
#include <stdexcept>

#include "realm/numeric/bits.hpp"

namespace realm::mult {

MitchellMultiplier::MitchellMultiplier(int n, int t) : n_{n}, t_{t} {
  if (n < 2 || n > 31) throw std::invalid_argument("MitchellMultiplier: N in [2, 31]");
  if (t < 0 || t > n - 1) throw std::invalid_argument("MitchellMultiplier: t in [0, N-1]");
}

std::uint64_t MitchellMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  if (a == 0 || b == 0) return 0;

  const int w = n_ - 1;
  const int f = w - t_;
  const int ka = num::leading_one(a);
  const int kb = num::leading_one(b);
  const std::uint64_t xf = ((a ^ (std::uint64_t{1} << ka)) << (w - ka)) >> t_;
  const std::uint64_t yf = ((b ^ (std::uint64_t{1} << kb)) << (w - kb)) >> t_;

  // Eq. 3: both branches collapse to (1.frac) · 2^(ka+kb+carry) because
  // x + y >= 1 means x + y = 1 + frac.
  const std::uint64_t fsum = xf + yf;
  const std::uint64_t c_of = f > 0 ? (fsum >> f) : fsum;
  const std::uint64_t frac = f > 0 ? (fsum & num::mask(f)) : 0;
  const int k_sum = ka + kb + static_cast<int>(c_of);

  const std::uint64_t significand = (std::uint64_t{1} << f) | frac;
  if (k_sum >= f) return significand << (k_sum - f);
  return significand >> (f - k_sum);
}

std::string MitchellMultiplier::name() const {
  return t_ == 0 ? "cALM" : "cALM (t=" + std::to_string(t_) + ")";
}

}  // namespace realm::mult
