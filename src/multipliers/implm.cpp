#include "realm/multipliers/implm.hpp"

#include <cassert>
#include <stdexcept>

#include "realm/numeric/bits.hpp"
#include "realm/numeric/int128.hpp"

namespace realm::mult {

ImplmMultiplier::ImplmMultiplier(int n) : n_{n} {
  if (n < 2 || n > 30) throw std::invalid_argument("ImplmMultiplier: N in [2, 30]");
}

std::uint64_t ImplmMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  if (a == 0 || b == 0) return 0;

  // Signed fractions in Q(w) relative to the *nearest* power of two:
  // f = A/2^k_hat - 1 ∈ [-1/4, 1/2).
  const int w = n_ - 1;
  const auto frac_of = [w](std::uint64_t v) {
    const int k = num::nearest_one(v);
    // v·2^w / 2^k - 2^w, exact in 128-bit then narrowed (|f| < 2^w).
    const auto scaled = static_cast<num::int128>(v) << w;
    return std::pair{k, static_cast<std::int64_t>((scaled >> k) -
                                                  (static_cast<num::int128>(1) << w))};
  };
  const auto [ka, fa] = frac_of(a);
  const auto [kb, fb] = frac_of(b);

  // C~ = 2^(ka+kb) · (1 + fa + fb); the signed fraction sum lies in
  // [-1/2, 1), so the significand (1 + fa + fb) ∈ [1/2, 2) is always
  // positive and the final shift realizes it exactly.
  const std::int64_t significand = (std::int64_t{1} << w) + fa + fb;
  assert(significand > 0);
  const int k_sum = ka + kb;
  if (k_sum >= w) return static_cast<std::uint64_t>(significand) << (k_sum - w);
  return static_cast<std::uint64_t>(significand) >> (w - k_sum);
}

}  // namespace realm::mult
