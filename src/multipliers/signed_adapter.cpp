#include "realm/multipliers/signed_adapter.hpp"

#include <cassert>
#include <stdexcept>

#include "realm/multipliers/registry.hpp"
#include "realm/numeric/bits.hpp"

namespace realm::mult {

SignedMultiplier::SignedMultiplier(std::unique_ptr<Multiplier> core)
    : core_{std::move(core)} {
  if (!core_) throw std::invalid_argument("SignedMultiplier: null core");
}

std::int64_t SignedMultiplier::multiply(std::int64_t a, std::int64_t b) const {
  const int n = core_->width();
  assert(a >= -(std::int64_t{1} << (n - 1)) && a < (std::int64_t{1} << (n - 1)));
  assert(b >= -(std::int64_t{1} << (n - 1)) && b < (std::int64_t{1} << (n - 1)));
  (void)n;
  const bool negative = (a < 0) != (b < 0);
  const auto ua = static_cast<std::uint64_t>(a < 0 ? -a : a);
  const auto ub = static_cast<std::uint64_t>(b < 0 ? -b : b);
  const auto p = static_cast<std::int64_t>(core_->multiply(ua, ub));
  return negative ? -p : p;
}

SignedMultiplier make_signed_multiplier(const std::string& spec, int n) {
  return SignedMultiplier{make_multiplier(spec, n)};
}

}  // namespace realm::mult
