#include "realm/multipliers/accurate.hpp"

#include <cassert>
#include <stdexcept>

#include "realm/numeric/bits.hpp"
#include "realm/numeric/simd.hpp"

namespace realm::mult {
namespace {

REALM_MULTIVERSION
void accurate_batch_kernel(const std::uint64_t* __restrict a,
                           const std::uint64_t* __restrict b,
                           std::uint64_t* __restrict out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

REALM_MULTIVERSION
void accurate_row_batch_kernel(std::uint64_t a_fixed,
                               const std::uint64_t* __restrict b,
                               std::uint64_t* __restrict out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a_fixed * b[i];
}

REALM_MULTIVERSION
void accurate_row_range_kernel(std::uint64_t a_fixed, std::uint64_t b0,
                               std::uint64_t* __restrict out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a_fixed * (b0 + i);
}

}  // namespace

AccurateMultiplier::AccurateMultiplier(int n) : n_{n} {
  if (n < 1 || n > 31) throw std::invalid_argument("AccurateMultiplier: N in [1, 31]");
}

std::uint64_t AccurateMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  return a * b;
}

void AccurateMultiplier::multiply_batch(const std::uint64_t* a, const std::uint64_t* b,
                                        std::uint64_t* out, std::size_t n) const {
  accurate_batch_kernel(a, b, out, n);
}

void AccurateMultiplier::multiply_row_batch(std::uint64_t a_fixed,
                                            const std::uint64_t* b,
                                            std::uint64_t* out, std::size_t n) const {
  assert(num::fits(a_fixed, n_));
  accurate_row_batch_kernel(a_fixed, b, out, n);
}

void AccurateMultiplier::multiply_row_range(std::uint64_t a_fixed, std::uint64_t b0,
                                            std::uint64_t* out, std::size_t n) const {
  assert(num::fits(a_fixed, n_) && (n == 0 || num::fits(b0 + n - 1, n_)));
  accurate_row_range_kernel(a_fixed, b0, out, n);
}

}  // namespace realm::mult
