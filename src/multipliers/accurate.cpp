#include "realm/multipliers/accurate.hpp"

#include <cassert>
#include <stdexcept>

#include "realm/numeric/bits.hpp"

namespace realm::mult {

AccurateMultiplier::AccurateMultiplier(int n) : n_{n} {
  if (n < 1 || n > 31) throw std::invalid_argument("AccurateMultiplier: N in [1, 31]");
}

std::uint64_t AccurateMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  return a * b;
}

}  // namespace realm::mult
