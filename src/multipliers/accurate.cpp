#include "realm/multipliers/accurate.hpp"

#include <cassert>
#include <stdexcept>

#include "realm/numeric/bits.hpp"
#include "realm/numeric/simd.hpp"

namespace realm::mult {
namespace {

REALM_MULTIVERSION
void accurate_batch_kernel(const std::uint64_t* __restrict a,
                           const std::uint64_t* __restrict b,
                           std::uint64_t* __restrict out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

}  // namespace

AccurateMultiplier::AccurateMultiplier(int n) : n_{n} {
  if (n < 1 || n > 31) throw std::invalid_argument("AccurateMultiplier: N in [1, 31]");
}

std::uint64_t AccurateMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  return a * b;
}

void AccurateMultiplier::multiply_batch(const std::uint64_t* a, const std::uint64_t* b,
                                        std::uint64_t* out, std::size_t n) const {
  accurate_batch_kernel(a, b, out, n);
}

}  // namespace realm::mult
