#include "realm/multipliers/udm.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "realm/numeric/bits.hpp"

namespace realm::mult {
namespace {

// The 2×2 block: exact except 3×3 -> 7.
std::uint64_t udm2(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t a0 = a & 1u, a1 = (a >> 1) & 1u;
  const std::uint64_t b0 = b & 1u, b1 = (b >> 1) & 1u;
  return (a0 & b0) | (((a1 & b0) | (a0 & b1)) << 1) | ((a1 & b1) << 2);
}

std::uint64_t udm_rec(std::uint64_t a, std::uint64_t b, int n) {
  if (n == 2) return udm2(a, b);
  const int h = n / 2;
  const std::uint64_t mask = realm::num::mask(h);
  const std::uint64_t ah = a >> h, al = a & mask;
  const std::uint64_t bh = b >> h, bl = b & mask;
  return (udm_rec(ah, bh, h) << n) +
         ((udm_rec(ah, bl, h) + udm_rec(al, bh, h)) << h) + udm_rec(al, bl, h);
}

}  // namespace

UdmMultiplier::UdmMultiplier(int n) : n_{n} {
  if (n < 2 || n > 31 || !std::has_single_bit(static_cast<unsigned>(n))) {
    throw std::invalid_argument("UdmMultiplier: N must be a power of two in [2, 16]");
  }
}

std::uint64_t UdmMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  return udm_rec(a, b, n_);
}

TruncatedMultiplier::TruncatedMultiplier(int n, int drop)
    : n_{n}, drop_{drop}, correction_{0} {
  if (n < 2 || n > 31) throw std::invalid_argument("TruncatedMultiplier: N in [2, 31]");
  if (drop < 0 || drop >= 2 * n) {
    throw std::invalid_argument("TruncatedMultiplier: drop in [0, 2N)");
  }
  // Expected dropped mass for uniform inputs: each partial product bit is 1
  // with probability 1/4, so E = (1/4)·Σ_{i+j < drop} 2^(i+j); rounded to
  // units of 2^drop.
  double expected = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i + j < drop) expected += 0.25 * std::ldexp(1.0, i + j);
    }
  }
  correction_ =
      static_cast<std::uint64_t>(std::llround(expected / std::ldexp(1.0, drop)));
}

std::uint64_t TruncatedMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  std::uint64_t acc = correction_ << drop_;
  for (int i = 0; i < n_; ++i) {
    if (((b >> i) & 1u) == 0) continue;
    for (int j = 0; j < n_; ++j) {
      if (((a >> j) & 1u) != 0 && i + j >= drop_) acc += std::uint64_t{1} << (i + j);
    }
  }
  return acc;
}

std::string TruncatedMultiplier::name() const {
  return "TRUNC (drop=" + std::to_string(drop_) + ")";
}

}  // namespace realm::mult
