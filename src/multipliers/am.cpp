#include "realm/multipliers/am.hpp"

#include <cassert>
#include <stdexcept>
#include <vector>

#include "realm/numeric/bits.hpp"

namespace realm::mult {

AmMultiplier::AmMultiplier(int n, int nb, AmVariant variant)
    : n_{n}, nb_{nb}, variant_{variant} {
  if (n < 2 || n > 31) throw std::invalid_argument("AmMultiplier: N in [2, 31]");
  if (nb < 0 || nb > 2 * n) throw std::invalid_argument("AmMultiplier: nb in [0, 2N]");
}

std::uint64_t AmMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  if (a == 0 || b == 0) return 0;

  // Partial-product rows at fixed positions — zero rows participate in the
  // pairing exactly as in the RTL's fixed reduction tree.
  std::vector<std::uint64_t> layer(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    layer[static_cast<std::size_t>(i)] = ((b >> i) & 1u) ? (a << i) : 0;
  }

  // Approximate reduction: each adder emits a carry-free sum x^y plus an
  // error vector (x&y)<<1 — the dropped carries at their true weight.  The
  // error network differs between the variants:
  //   AM1 accumulates the masked error vectors with exact adders,
  //   AM2 merges them with OR gates (cheaper, loses coincident carries).
  // Recovery is restricted to the nb most-significant product columns.
  const int lo_cols = 2 * n_ - nb_;
  const std::uint64_t recov_mask = num::mask(2 * n_) & ~num::mask(lo_cols);
  std::uint64_t err_acc = 0;
  while (layer.size() > 1) {
    std::vector<std::uint64_t> next;
    next.reserve(layer.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const std::uint64_t x = layer[i], y = layer[i + 1];
      next.push_back(x ^ y);
      const std::uint64_t e = ((x & y) << 1) & recov_mask;
      if (variant_ == AmVariant::kAm1) {
        err_acc += e;
      } else {
        err_acc |= e;
      }
    }
    if (layer.size() % 2 != 0) next.push_back(layer.back());
    layer = std::move(next);
  }

  // The masked error vectors are a subset of the dropped carries, so the
  // recovered sum never exceeds the exact product.
  return (layer.front() + err_acc) & num::mask(2 * n_);
}

std::string AmMultiplier::name() const {
  return std::string{variant_ == AmVariant::kAm1 ? "AM1" : "AM2"} +
         " (nb=" + std::to_string(nb_) + ")";
}

}  // namespace realm::mult
