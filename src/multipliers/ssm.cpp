#include "realm/multipliers/ssm.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "realm/numeric/bits.hpp"
#include "realm/numeric/simd.hpp"

namespace realm::mult {
namespace {

// Shared contiguous-column kernel: within a sub-range on one side of a
// segment boundary the segment shift sb and the product shift are constant,
// so the loop is one multiply and one fixed shift (SSM and ESSM only differ
// in how the caller splits the range).
REALM_MULTIVERSION
void ssm_row_segment_kernel(std::uint64_t b_first, std::uint64_t* __restrict out,
                            std::size_t n, std::uint64_t sa, std::uint64_t sb,
                            std::uint64_t shift) {
  for (std::size_t idx = 0; idx < n; ++idx) {
    out[idx] = (sa * ((b_first + idx) >> sb)) << shift;
  }
}

// Row-hoisted SSM kernel: the fixed operand's segment (sa) and offset are
// folded into scalars; the loop keeps only the b-side 2-way segment select.
REALM_MULTIVERSION
void ssm_row_batch_kernel(const std::uint64_t* __restrict b,
                          std::uint64_t* __restrict out, std::size_t n,
                          std::uint64_t sa, std::uint64_t oa, std::uint64_t m,
                          std::uint64_t off) {
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint64_t b0 = b[idx];
    const bool top = (b0 >> m) != 0;
    const std::uint64_t sb = top ? (b0 >> off) : b0;
    const std::uint64_t ob = top ? off : 0;
    out[idx] = (sa * sb) << (oa + ob);
  }
}

// Row-hoisted ESSM kernel: b-side 3-way segment select, a-side hoisted.
REALM_MULTIVERSION
void essm_row_batch_kernel(const std::uint64_t* __restrict b,
                           std::uint64_t* __restrict out, std::size_t n,
                           std::uint64_t sa, std::uint64_t oa, std::uint64_t m,
                           std::uint64_t off_mid, std::uint64_t off_hi) {
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint64_t b0 = b[idx];
    const bool hi = (b0 >> (m + off_mid)) != 0;
    const bool mid = (b0 >> m) != 0;
    const std::uint64_t sb = hi ? (b0 >> off_hi) : (mid ? (b0 >> off_mid) : b0);
    const std::uint64_t ob = hi ? off_hi : (mid ? off_mid : 0);
    out[idx] = (sa * sb) << (oa + ob);
  }
}

}  // namespace

SsmMultiplier::SsmMultiplier(int n, int m) : n_{n}, m_{m} {
  if (n < 2 || n > 31) throw std::invalid_argument("SsmMultiplier: N in [2, 31]");
  if (m < 1 || m > n) throw std::invalid_argument("SsmMultiplier: m in [1, N]");
}

std::uint64_t SsmMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  const int off = n_ - m_;
  const auto segment = [&](std::uint64_t v) -> std::pair<std::uint64_t, int> {
    if (v >> m_ != 0) return {v >> off, off};  // any upper bit set -> top segment
    return {v, 0};
  };
  const auto [sa, oa] = segment(a);
  const auto [sb, ob] = segment(b);
  return (sa * sb) << (oa + ob);
}

void SsmMultiplier::multiply_row_batch(std::uint64_t a_fixed, const std::uint64_t* b,
                                       std::uint64_t* out, std::size_t n) const {
  assert(num::fits(a_fixed, n_));
  const int off = n_ - m_;
  const bool top = (a_fixed >> m_) != 0;
  const std::uint64_t sa = top ? (a_fixed >> off) : a_fixed;
  const std::uint64_t oa = top ? static_cast<std::uint64_t>(off) : 0;
  ssm_row_batch_kernel(b, out, n, sa, oa, static_cast<std::uint64_t>(m_),
                       static_cast<std::uint64_t>(off));
}

void SsmMultiplier::multiply_row_range(std::uint64_t a_fixed, std::uint64_t b0,
                                       std::uint64_t* out, std::size_t n) const {
  assert(num::fits(a_fixed, n_) && (n == 0 || num::fits(b0 + n - 1, n_)));
  if (n == 0) return;
  const int off = n_ - m_;
  const bool top = (a_fixed >> m_) != 0;
  const std::uint64_t sa = top ? (a_fixed >> off) : a_fixed;
  const std::uint64_t oa = top ? static_cast<std::uint64_t>(off) : 0;

  const std::uint64_t last = b0 + n - 1;
  const std::uint64_t boundary = std::uint64_t{1} << m_;  // first top-segment b
  if (b0 < boundary) {
    const std::uint64_t lo_last = std::min(last, boundary - 1);
    ssm_row_segment_kernel(b0, out, static_cast<std::size_t>(lo_last - b0 + 1),
                           sa, 0, oa);
  }
  if (last >= boundary) {
    const std::uint64_t hi_first = std::max(b0, boundary);
    ssm_row_segment_kernel(hi_first, out + (hi_first - b0),
                           static_cast<std::size_t>(last - hi_first + 1), sa,
                           static_cast<std::uint64_t>(off),
                           oa + static_cast<std::uint64_t>(off));
  }
}

std::string SsmMultiplier::name() const { return "SSM (m=" + std::to_string(m_) + ")"; }

EssmMultiplier::EssmMultiplier(int n, int m) : n_{n}, m_{m} {
  if (n < 2 || n > 31) throw std::invalid_argument("EssmMultiplier: N in [2, 31]");
  if (m < 1 || m > n) throw std::invalid_argument("EssmMultiplier: m in [1, N]");
  if ((n - m) % 2 != 0) {
    throw std::invalid_argument("EssmMultiplier: N-m must be even");
  }
}

std::uint64_t EssmMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  const int off_hi = n_ - m_;
  const int off_mid = off_hi / 2;
  const auto segment = [&](std::uint64_t v) -> std::pair<std::uint64_t, int> {
    if (v >> (m_ + off_mid) != 0) return {v >> off_hi, off_hi};
    if (v >> m_ != 0) return {v >> off_mid, off_mid};
    return {v, 0};
  };
  const auto [sa, oa] = segment(a);
  const auto [sb, ob] = segment(b);
  return (sa * sb) << (oa + ob);
}

void EssmMultiplier::multiply_row_batch(std::uint64_t a_fixed, const std::uint64_t* b,
                                        std::uint64_t* out, std::size_t n) const {
  assert(num::fits(a_fixed, n_));
  const int off_hi = n_ - m_;
  const int off_mid = off_hi / 2;
  const bool hi = (a_fixed >> (m_ + off_mid)) != 0;
  const bool mid = (a_fixed >> m_) != 0;
  const std::uint64_t sa =
      hi ? (a_fixed >> off_hi) : (mid ? (a_fixed >> off_mid) : a_fixed);
  const std::uint64_t oa = hi ? static_cast<std::uint64_t>(off_hi)
                              : (mid ? static_cast<std::uint64_t>(off_mid) : 0);
  essm_row_batch_kernel(b, out, n, sa, oa, static_cast<std::uint64_t>(m_),
                        static_cast<std::uint64_t>(off_mid),
                        static_cast<std::uint64_t>(off_hi));
}

void EssmMultiplier::multiply_row_range(std::uint64_t a_fixed, std::uint64_t b0,
                                        std::uint64_t* out, std::size_t n) const {
  assert(num::fits(a_fixed, n_) && (n == 0 || num::fits(b0 + n - 1, n_)));
  if (n == 0) return;
  const int off_hi = n_ - m_;
  const int off_mid = off_hi / 2;
  const bool a_hi = (a_fixed >> (m_ + off_mid)) != 0;
  const bool a_mid = (a_fixed >> m_) != 0;
  const std::uint64_t sa =
      a_hi ? (a_fixed >> off_hi) : (a_mid ? (a_fixed >> off_mid) : a_fixed);
  const std::uint64_t oa = a_hi ? static_cast<std::uint64_t>(off_hi)
                                : (a_mid ? static_cast<std::uint64_t>(off_mid) : 0);

  const std::uint64_t last = b0 + n - 1;
  // Sub-ranges per b-side segment: [0, 2^m), [2^m, 2^(m+off_mid)), above.
  const std::uint64_t cut_mid = std::uint64_t{1} << m_;
  const std::uint64_t cut_hi = std::uint64_t{1} << (m_ + off_mid);
  struct Piece {
    std::uint64_t first, last, sb, ob;
  };
  const Piece pieces[3] = {
      {b0, std::min(last, cut_mid - 1), 0, 0},
      {std::max(b0, cut_mid), std::min(last, cut_hi - 1),
       static_cast<std::uint64_t>(off_mid), static_cast<std::uint64_t>(off_mid)},
      {std::max(b0, cut_hi), last, static_cast<std::uint64_t>(off_hi),
       static_cast<std::uint64_t>(off_hi)},
  };
  for (const auto& p : pieces) {
    if (p.first > p.last || p.first > last) continue;
    ssm_row_segment_kernel(p.first, out + (p.first - b0),
                           static_cast<std::size_t>(p.last - p.first + 1), sa,
                           p.sb, oa + p.ob);
  }
}

std::string EssmMultiplier::name() const {
  return "ESSM" + std::to_string(m_) + " (m=" + std::to_string(m_) + ")";
}

}  // namespace realm::mult
