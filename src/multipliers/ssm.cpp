#include "realm/multipliers/ssm.hpp"

#include <cassert>
#include <stdexcept>

#include "realm/numeric/bits.hpp"

namespace realm::mult {

SsmMultiplier::SsmMultiplier(int n, int m) : n_{n}, m_{m} {
  if (n < 2 || n > 31) throw std::invalid_argument("SsmMultiplier: N in [2, 31]");
  if (m < 1 || m > n) throw std::invalid_argument("SsmMultiplier: m in [1, N]");
}

std::uint64_t SsmMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  const int off = n_ - m_;
  const auto segment = [&](std::uint64_t v) -> std::pair<std::uint64_t, int> {
    if (v >> m_ != 0) return {v >> off, off};  // any upper bit set -> top segment
    return {v, 0};
  };
  const auto [sa, oa] = segment(a);
  const auto [sb, ob] = segment(b);
  return (sa * sb) << (oa + ob);
}

std::string SsmMultiplier::name() const { return "SSM (m=" + std::to_string(m_) + ")"; }

EssmMultiplier::EssmMultiplier(int n, int m) : n_{n}, m_{m} {
  if (n < 2 || n > 31) throw std::invalid_argument("EssmMultiplier: N in [2, 31]");
  if (m < 1 || m > n) throw std::invalid_argument("EssmMultiplier: m in [1, N]");
  if ((n - m) % 2 != 0) {
    throw std::invalid_argument("EssmMultiplier: N-m must be even");
  }
}

std::uint64_t EssmMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  const int off_hi = n_ - m_;
  const int off_mid = off_hi / 2;
  const auto segment = [&](std::uint64_t v) -> std::pair<std::uint64_t, int> {
    if (v >> (m_ + off_mid) != 0) return {v >> off_hi, off_hi};
    if (v >> m_ != 0) return {v >> off_mid, off_mid};
    return {v, 0};
  };
  const auto [sa, oa] = segment(a);
  const auto [sb, ob] = segment(b);
  return (sa * sb) << (oa + ob);
}

std::string EssmMultiplier::name() const {
  return "ESSM" + std::to_string(m_) + " (m=" + std::to_string(m_) + ")";
}

}  // namespace realm::mult
