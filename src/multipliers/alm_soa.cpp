#include "realm/multipliers/alm.hpp"

#include <cassert>
#include <stdexcept>

#include "realm/numeric/bits.hpp"

namespace realm::mult {

AlmMultiplier::AlmMultiplier(int n, int m, AlmAdder adder)
    : n_{n}, m_{m}, adder_{adder} {
  if (n < 2 || n > 31) throw std::invalid_argument("AlmMultiplier: N in [2, 31]");
  if (m < 0 || m > n - 1) throw std::invalid_argument("AlmMultiplier: m in [0, N-1]");
}

std::uint64_t AlmMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  if (a == 0 || b == 0) return 0;

  const int w = n_ - 1;
  const int ka = num::leading_one(a);
  const int kb = num::leading_one(b);
  const std::uint64_t xf = (a ^ (std::uint64_t{1} << ka)) << (w - ka);
  const std::uint64_t yf = (b ^ (std::uint64_t{1} << kb)) << (w - kb);

  // Approximate fraction addition: exact on the upper w-m bits, approximate
  // on the lower m bits, no carry crossing the boundary except MAA's
  // AND-based prediction.
  std::uint64_t fsum;
  if (m_ == 0) {
    fsum = xf + yf;
  } else {
    const std::uint64_t lo_mask = num::mask(m_);
    const std::uint64_t xhi = xf >> m_, yhi = yf >> m_;
    std::uint64_t lo, carry;
    if (adder_ == AlmAdder::kSetOne) {
      lo = lo_mask;  // constant ones
      carry = 0;
    } else {
      lo = (xf | yf) & lo_mask;
      carry = (xf >> (m_ - 1)) & (yf >> (m_ - 1)) & 1u;  // LOA carry prediction
    }
    fsum = ((xhi + yhi + carry) << m_) | lo;
  }

  const std::uint64_t c_of = fsum >> w;
  const std::uint64_t frac = fsum & num::mask(w);
  const int k_sum = ka + kb + static_cast<int>(c_of);

  const std::uint64_t significand = (std::uint64_t{1} << w) | frac;
  if (k_sum >= w) return significand << (k_sum - w);
  return significand >> (w - k_sum);
}

std::string AlmMultiplier::name() const {
  const char* kind = adder_ == AlmAdder::kSetOne ? "ALM-SOA" : "ALM-MAA";
  return std::string{kind} + " (m=" + std::to_string(m_) + ")";
}

}  // namespace realm::mult
