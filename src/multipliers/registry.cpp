#include "realm/multipliers/registry.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <stdexcept>

#include "realm/core/realm_multiplier.hpp"
#include "realm/multipliers/accurate.hpp"
#include "realm/multipliers/alm.hpp"
#include "realm/multipliers/am.hpp"
#include "realm/multipliers/drum.hpp"
#include "realm/multipliers/implm.hpp"
#include "realm/multipliers/intalp.hpp"
#include "realm/multipliers/mbm.hpp"
#include "realm/multipliers/mitchell.hpp"
#include "realm/multipliers/ssm.hpp"
#include "realm/multipliers/udm.hpp"

namespace realm::mult {

int SpecParams::get(const std::string& key, int fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

int SpecParams::require(const std::string& key) const {
  const auto it = params.find(key);
  if (it == params.end()) {
    throw std::invalid_argument("spec: design '" + design + "' requires parameter '" +
                                key + "'");
  }
  return it->second;
}

SpecParams parse_spec(const std::string& spec) {
  SpecParams out;
  const auto colon = spec.find(':');
  out.design = spec.substr(0, colon);
  std::transform(out.design.begin(), out.design.end(), out.design.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (colon == std::string::npos) return out;

  std::string rest = spec.substr(colon + 1);
  // ';' is accepted as a parameter separator so CSV-safe specs round-trip.
  std::replace(rest.begin(), rest.end(), ';', ',');
  std::size_t pos = 0;
  while (pos < rest.size()) {
    const auto comma = rest.find(',', pos);
    const std::string kv =
        rest.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("make_multiplier: malformed parameter in '" + spec + "'");
    }
    std::string key = kv.substr(0, eq);
    std::transform(key.begin(), key.end(), key.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    out.params[key] = std::stoi(kv.substr(eq + 1));
    pos = comma == std::string::npos ? rest.size() : comma + 1;
  }
  return out;
}

std::unique_ptr<Multiplier> make_multiplier(const std::string& spec, int n) {
  const SpecParams s = parse_spec(spec);
  if (s.design == "accurate") return std::make_unique<AccurateMultiplier>(n);
  if (s.design == "calm" || s.design == "mitchell") {
    return std::make_unique<MitchellMultiplier>(n, s.get("t", 0));
  }
  if (s.design == "realm") {
    core::RealmConfig cfg;
    cfg.n = n;
    cfg.m = s.get("m", 16);
    cfg.t = s.get("t", 0);
    cfg.q = s.get("q", 6);
    cfg.formulation = s.get("mse", 0) != 0 ? core::Formulation::kMeanSquareError
                                           : core::Formulation::kMeanRelativeError;
    return std::make_unique<core::RealmMultiplier>(cfg);
  }
  if (s.design == "mbm") {
    return std::make_unique<MbmMultiplier>(n, s.get("t", 0), s.get("q", 6));
  }
  if (s.design == "alm-soa") {
    return std::make_unique<AlmMultiplier>(n, s.require("m"), AlmAdder::kSetOne);
  }
  if (s.design == "alm-maa") {
    return std::make_unique<AlmMultiplier>(n, s.require("m"), AlmAdder::kLowerOr);
  }
  if (s.design == "implm") return std::make_unique<ImplmMultiplier>(n);
  if (s.design == "drum") return std::make_unique<DrumMultiplier>(n, s.require("k"));
  if (s.design == "ssm") return std::make_unique<SsmMultiplier>(n, s.require("m"));
  if (s.design == "essm") return std::make_unique<EssmMultiplier>(n, s.require("m"));
  if (s.design == "am1") {
    return std::make_unique<AmMultiplier>(n, s.require("nb"), AmVariant::kAm1);
  }
  if (s.design == "am2") {
    return std::make_unique<AmMultiplier>(n, s.require("nb"), AmVariant::kAm2);
  }
  if (s.design == "intalp") {
    return std::make_unique<IntAlpMultiplier>(n, s.get("l", 2));
  }
  if (s.design == "udm") return std::make_unique<UdmMultiplier>(n);
  if (s.design == "trunc") {
    return std::make_unique<TruncatedMultiplier>(n, s.require("drop"));
  }
  throw std::invalid_argument("make_multiplier: unknown design '" + s.design + "'");
}

std::vector<std::string> table1_specs() {
  std::vector<std::string> specs;
  for (int m : {16, 8, 4}) {
    for (int t = 0; t <= 9; ++t) {
      specs.push_back("realm:m=" + std::to_string(m) + ",t=" + std::to_string(t));
    }
  }
  specs.emplace_back("calm");
  specs.emplace_back("implm");
  for (int t : {0, 2, 4, 6, 8, 9}) specs.push_back("mbm:t=" + std::to_string(t));
  for (int m : {3, 6, 9, 11, 12}) specs.push_back("alm-maa:m=" + std::to_string(m));
  for (int m : {3, 6, 9, 11, 12}) specs.push_back("alm-soa:m=" + std::to_string(m));
  specs.emplace_back("intalp:l=2");
  specs.emplace_back("intalp:l=1");
  for (int nb : {13, 9, 5}) specs.push_back("am1:nb=" + std::to_string(nb));
  for (int nb : {13, 9, 5}) specs.push_back("am2:nb=" + std::to_string(nb));
  for (int k : {8, 7, 6, 5, 4}) specs.push_back("drum:k=" + std::to_string(k));
  for (int m : {10, 9, 8}) specs.push_back("ssm:m=" + std::to_string(m));
  specs.emplace_back("essm:m=8");
  return specs;
}

std::vector<std::string> table2_specs() {
  return {"realm:m=16,t=8", "realm:m=8,t=8", "realm:m=4,t=8", "mbm:t=0",
          "calm",           "implm",         "intalp:l=1",    "alm-soa:m=11"};
}

std::vector<std::string> fig1_specs() {
  return {"calm", "alm-soa:m=11", "implm", "mbm:t=0", "intalp:l=1", "realm:m=16,t=0"};
}

}  // namespace realm::mult
