#include "realm/multipliers/mbm.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "realm/core/segment_factors.hpp"
#include "realm/numeric/bits.hpp"

namespace realm::mult {

MbmMultiplier::MbmMultiplier(int n, int t, int q) : n_{n}, t_{t}, q_{q}, corr_units_{0} {
  if (n < 2 || n > 31) throw std::invalid_argument("MbmMultiplier: N in [2, 31]");
  if (t < 0 || t > n - 2) throw std::invalid_argument("MbmMultiplier: t in [0, N-2]");
  if (q < 3) throw std::invalid_argument("MbmMultiplier: q >= 3");
  corr_units_ =
      static_cast<std::uint32_t>(std::lround(core::mbm_correction() * std::ldexp(1.0, q_)));
}

std::uint64_t MbmMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  if (a == 0 || b == 0) return 0;

  const int w = n_ - 1;
  const int f = w - t_;
  const int ka = num::leading_one(a);
  const int kb = num::leading_one(b);
  const std::uint64_t xf = (((a ^ (std::uint64_t{1} << ka)) << (w - ka)) >> t_) | 1u;
  const std::uint64_t yf = (((b ^ (std::uint64_t{1} << kb)) << (w - kb)) >> t_) | 1u;

  const std::uint64_t fsum = xf + yf;
  const std::uint64_t c_of = fsum >> f;
  const std::uint64_t frac = fsum & num::mask(f);

  // Single correction constant, halved when the fraction sum carried —
  // identical application to REALM's s_ij (Eq. 13 with M = 1).
  const int q1 = q_ + 1;
  const std::uint64_t s_units =
      (c_of != 0) ? corr_units_ : (std::uint64_t{corr_units_} << 1);
  const std::uint64_t s_aligned =
      (f >= q1) ? (s_units << (f - q1)) : (s_units >> (q1 - f));

  const std::uint64_t significand = (std::uint64_t{1} << f) + frac + s_aligned;
  const int k_sum = ka + kb + static_cast<int>(c_of);
  if (k_sum >= f) return significand << (k_sum - f);
  return significand >> (f - k_sum);
}

std::string MbmMultiplier::name() const { return "MBM (t=" + std::to_string(t_) + ")"; }

}  // namespace realm::mult
