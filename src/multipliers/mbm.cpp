#include "realm/multipliers/mbm.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "realm/core/segment_factors.hpp"
#include "realm/numeric/bits.hpp"
#include "realm/numeric/simd.hpp"

namespace realm::mult {
namespace {

// Row-hoisted kernel: the fixed operand's fraction xf and both
// carry-selected significand bases (1 << f plus the aligned correction for
// c_of = 0 / 1) are scalar parameters — the loop carries the b-side LOD
// chain, one add, a blend and the final shift.
REALM_MULTIVERSION
void mbm_row_batch_kernel(const std::uint64_t* __restrict b,
                          std::uint64_t* __restrict out, std::size_t n,
                          std::uint64_t w, std::uint64_t t, std::uint64_t f,
                          std::uint64_t fmask, std::uint64_t one_w,
                          std::uint64_t xf, std::uint64_t base0,
                          std::uint64_t base1, std::int64_t dbase) {
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint64_t b0 = b[idx];
    const std::uint64_t bv = b0 | static_cast<std::uint64_t>(b0 == 0);
    const auto kb = 63u - static_cast<std::uint64_t>(std::countl_zero(bv));
    const std::uint64_t yf = (((bv << (w - kb)) ^ one_w) >> t) | 1u;

    const std::uint64_t fsum = xf + yf;
    const std::uint64_t c_of = fsum >> f;
    const std::uint64_t frac = fsum & fmask;

    const std::uint64_t significand = ((c_of != 0) ? base1 : base0) + frac;
    const auto d = dbase + static_cast<std::int64_t>(kb + c_of);
    const std::uint64_t shl = significand << (static_cast<std::uint64_t>(d) & 63u);
    const std::uint64_t shr = significand >> (static_cast<std::uint64_t>(-d) & 63u);
    const std::uint64_t val = (d >= 0) ? shl : shr;
    out[idx] = (b0 != 0) ? val : 0;
  }
}

// Contiguous-column segment with constant kb: both carry cases are computed
// with constant shift pairs and blended on the fraction carry.
REALM_MULTIVERSION
void mbm_row_segment_kernel(std::uint64_t b_first, std::uint64_t* __restrict out,
                            std::size_t n, std::uint64_t norm_shift,
                            std::uint64_t t, std::uint64_t f, std::uint64_t fmask,
                            std::uint64_t one_w, std::uint64_t xf,
                            std::uint64_t base0, std::uint64_t base1,
                            std::uint64_t shl0, std::uint64_t shr0,
                            std::uint64_t shl1, std::uint64_t shr1) {
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint64_t bb = b_first + idx;
    const std::uint64_t yf = (((bb << norm_shift) ^ one_w) >> t) | 1u;
    const std::uint64_t fsum = xf + yf;
    const std::uint64_t c_of = fsum >> f;
    const std::uint64_t frac = fsum & fmask;
    const std::uint64_t v0 = ((base0 + frac) << shl0) >> shr0;
    const std::uint64_t v1 = ((base1 + frac) << shl1) >> shr1;
    out[idx] = (c_of != 0) ? v1 : v0;
  }
}

constexpr void shift_pair(std::int64_t d, std::uint64_t& shl, std::uint64_t& shr) {
  shl = d >= 0 ? static_cast<std::uint64_t>(d) : 0;
  shr = d >= 0 ? 0 : static_cast<std::uint64_t>(-d);
}

}  // namespace

MbmMultiplier::MbmMultiplier(int n, int t, int q) : n_{n}, t_{t}, q_{q}, corr_units_{0} {
  if (n < 2 || n > 31) throw std::invalid_argument("MbmMultiplier: N in [2, 31]");
  if (t < 0 || t > n - 2) throw std::invalid_argument("MbmMultiplier: t in [0, N-2]");
  if (q < 3) throw std::invalid_argument("MbmMultiplier: q >= 3");
  corr_units_ =
      static_cast<std::uint32_t>(std::lround(core::mbm_correction() * std::ldexp(1.0, q_)));
}

std::uint64_t MbmMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  assert(num::fits(a, n_) && num::fits(b, n_));
  if (a == 0 || b == 0) return 0;

  const int w = n_ - 1;
  const int f = w - t_;
  const int ka = num::leading_one(a);
  const int kb = num::leading_one(b);
  const std::uint64_t xf = (((a ^ (std::uint64_t{1} << ka)) << (w - ka)) >> t_) | 1u;
  const std::uint64_t yf = (((b ^ (std::uint64_t{1} << kb)) << (w - kb)) >> t_) | 1u;

  const std::uint64_t fsum = xf + yf;
  const std::uint64_t c_of = fsum >> f;
  const std::uint64_t frac = fsum & num::mask(f);

  // Single correction constant, halved when the fraction sum carried —
  // identical application to REALM's s_ij (Eq. 13 with M = 1).
  const int q1 = q_ + 1;
  const std::uint64_t s_units =
      (c_of != 0) ? corr_units_ : (std::uint64_t{corr_units_} << 1);
  const std::uint64_t s_aligned =
      (f >= q1) ? (s_units << (f - q1)) : (s_units >> (q1 - f));

  const std::uint64_t significand = (std::uint64_t{1} << f) + frac + s_aligned;
  const int k_sum = ka + kb + static_cast<int>(c_of);
  if (k_sum >= f) return significand << (k_sum - f);
  return significand >> (f - k_sum);
}

void MbmMultiplier::multiply_row_batch(std::uint64_t a_fixed, const std::uint64_t* b,
                                       std::uint64_t* out, std::size_t n) const {
  assert(num::fits(a_fixed, n_));
  if (a_fixed == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const int w = n_ - 1;
  const int f = w - t_;
  const int q1 = q_ + 1;
  const int ka = num::leading_one(a_fixed);
  const std::uint64_t xf =
      (((a_fixed ^ (std::uint64_t{1} << ka)) << (w - ka)) >> t_) | 1u;
  const std::uint64_t s0 = std::uint64_t{corr_units_} << 1;  // c_of = 0
  const std::uint64_t s1 = corr_units_;                      // c_of = 1
  const std::uint64_t al0 = (f >= q1) ? (s0 << (f - q1)) : (s0 >> (q1 - f));
  const std::uint64_t al1 = (f >= q1) ? (s1 << (f - q1)) : (s1 >> (q1 - f));
  mbm_row_batch_kernel(b, out, n, static_cast<std::uint64_t>(w),
                       static_cast<std::uint64_t>(t_), static_cast<std::uint64_t>(f),
                       num::mask(f), std::uint64_t{1} << w, xf,
                       (std::uint64_t{1} << f) + al0, (std::uint64_t{1} << f) + al1,
                       static_cast<std::int64_t>(ka) - static_cast<std::int64_t>(f));
}

void MbmMultiplier::multiply_row_range(std::uint64_t a_fixed, std::uint64_t b0,
                                       std::uint64_t* out, std::size_t n) const {
  assert(num::fits(a_fixed, n_) && (n == 0 || num::fits(b0 + n - 1, n_)));
  if (n == 0) return;
  if (a_fixed == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const int w = n_ - 1;
  const int f = w - t_;
  const int q1 = q_ + 1;
  const int ka = num::leading_one(a_fixed);
  const std::uint64_t xf =
      (((a_fixed ^ (std::uint64_t{1} << ka)) << (w - ka)) >> t_) | 1u;
  const std::uint64_t s0 = std::uint64_t{corr_units_} << 1;
  const std::uint64_t s1 = corr_units_;
  const std::uint64_t al0 = (f >= q1) ? (s0 << (f - q1)) : (s0 >> (q1 - f));
  const std::uint64_t al1 = (f >= q1) ? (s1 << (f - q1)) : (s1 >> (q1 - f));
  const std::uint64_t base0 = (std::uint64_t{1} << f) + al0;
  const std::uint64_t base1 = (std::uint64_t{1} << f) + al1;

  std::uint64_t b = b0;
  const std::uint64_t last = b0 + n - 1;
  if (b == 0) {
    out[0] = 0;
    if (n == 1) return;
    b = 1;
  }
  while (b <= last) {
    const int kb = num::leading_one(b);
    const std::uint64_t seg_last = std::min(last, (std::uint64_t{2} << kb) - 1);
    const std::int64_t d0 =
        static_cast<std::int64_t>(ka + kb) - static_cast<std::int64_t>(f);
    std::uint64_t shl0 = 0, shr0 = 0, shl1 = 0, shr1 = 0;
    shift_pair(d0, shl0, shr0);
    shift_pair(d0 + 1, shl1, shr1);
    mbm_row_segment_kernel(b, out + (b - b0),
                           static_cast<std::size_t>(seg_last - b + 1),
                           static_cast<std::uint64_t>(w - kb),
                           static_cast<std::uint64_t>(t_),
                           static_cast<std::uint64_t>(f), num::mask(f),
                           std::uint64_t{1} << w, xf, base0, base1, shl0, shr0,
                           shl1, shr1);
    b = seg_last + 1;
  }
}

std::string MbmMultiplier::name() const { return "MBM (t=" + std::to_string(t_) + ")"; }

}  // namespace realm::mult
