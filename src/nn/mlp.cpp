#include "realm/nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "realm/multiplier.hpp"
#include "realm/numeric/rng.hpp"
#include "realm/obs/counters.hpp"
#include "realm/obs/trace.hpp"

namespace realm::nn {

Dataset make_two_moons(int samples, double noise, std::uint64_t seed) {
  if (samples < 2) throw std::invalid_argument("make_two_moons: samples >= 2");
  num::Xoshiro256 rng{seed};
  const double pi = std::acos(-1.0);
  Dataset d;
  d.x.reserve(static_cast<std::size_t>(samples));
  d.y.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const int label = i % 2;
    const double t = pi * rng.uniform();
    double px, py;
    if (label == 0) {
      px = std::cos(t);
      py = std::sin(t);
    } else {
      px = 1.0 - std::cos(t);
      py = 0.5 - std::sin(t);
    }
    px += noise * (rng.uniform() - 0.5);
    py += noise * (rng.uniform() - 0.5);
    d.x.push_back({px, py});
    d.y.push_back(label);
  }
  return d;
}

Mlp::Mlp(std::vector<int> layers, std::uint64_t seed) : layers_{std::move(layers)} {
  if (layers_.size() < 2 || layers_.front() != 2 || layers_.back() != 2) {
    throw std::invalid_argument("Mlp: layers must run from 2 inputs to 2 outputs");
  }
  num::Xoshiro256 rng{seed};
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    const int in = layers_[l];
    const int out = layers_[l + 1];
    // He-style initialization for the ReLU stack.
    const double scale = std::sqrt(2.0 / in);
    std::vector<double> w(static_cast<std::size_t>(in) * static_cast<std::size_t>(out));
    for (auto& v : w) v = scale * (2.0 * rng.uniform() - 1.0);
    weights_.push_back(std::move(w));
    biases_.emplace_back(static_cast<std::size_t>(out), 0.0);
  }
}

std::vector<double> Mlp::forward(const std::array<double, 2>& x,
                                 std::vector<std::vector<double>>* activations) const {
  std::vector<double> cur{x[0], x[1]};
  if (activations != nullptr) activations->push_back(cur);
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    const int in = layers_[l];
    const int out = layers_[l + 1];
    std::vector<double> next(static_cast<std::size_t>(out));
    for (int o = 0; o < out; ++o) {
      double acc = biases_[l][static_cast<std::size_t>(o)];
      for (int i = 0; i < in; ++i) {
        acc += weights_[l][static_cast<std::size_t>(o * in + i)] *
               cur[static_cast<std::size_t>(i)];
      }
      const bool last = l + 1 == weights_.size();
      next[static_cast<std::size_t>(o)] = last ? acc : std::max(0.0, acc);
    }
    cur = std::move(next);
    if (activations != nullptr) activations->push_back(cur);
  }
  return cur;
}

void Mlp::train(const Dataset& data, int epochs, double learning_rate) {
  num::Xoshiro256 rng{0x7ea1};
  std::vector<std::size_t> order(data.x.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (int epoch = 0; epoch < epochs; ++epoch) {
    // Fisher-Yates shuffle for per-epoch SGD order.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    for (const std::size_t idx : order) {
      std::vector<std::vector<double>> acts;
      const std::vector<double> logits = forward(data.x[idx], &acts);

      // Softmax cross-entropy gradient on the logits.
      const double mx = std::max(logits[0], logits[1]);
      const double e0 = std::exp(logits[0] - mx);
      const double e1 = std::exp(logits[1] - mx);
      const double z = e0 + e1;
      std::vector<double> delta{e0 / z, e1 / z};
      delta[static_cast<std::size_t>(data.y[idx])] -= 1.0;

      // Backprop through the ReLU stack.
      for (std::size_t l = weights_.size(); l-- > 0;) {
        const int in = layers_[l];
        const int out = layers_[l + 1];
        const auto& a_in = acts[l];
        std::vector<double> delta_in(static_cast<std::size_t>(in), 0.0);
        for (int o = 0; o < out; ++o) {
          const double d = delta[static_cast<std::size_t>(o)];
          biases_[l][static_cast<std::size_t>(o)] -= learning_rate * d;
          for (int i = 0; i < in; ++i) {
            auto& w = weights_[l][static_cast<std::size_t>(o * in + i)];
            delta_in[static_cast<std::size_t>(i)] += w * d;
            w -= learning_rate * d * a_in[static_cast<std::size_t>(i)];
          }
        }
        if (l > 0) {
          for (int i = 0; i < in; ++i) {
            if (acts[l][static_cast<std::size_t>(i)] <= 0.0) {
              delta_in[static_cast<std::size_t>(i)] = 0.0;  // ReLU gate
            }
          }
        }
        delta = std::move(delta_in);
      }
    }
  }
}

int Mlp::predict(const std::array<double, 2>& x) const {
  const auto logits = forward(x, nullptr);
  return logits[1] > logits[0] ? 1 : 0;
}

double Mlp::accuracy(const Dataset& data) const {
  int correct = 0;
  for (std::size_t i = 0; i < data.x.size(); ++i) {
    if (predict(data.x[i]) == data.y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.x.size());
}

Mlp::Quantized Mlp::quantize(int frac_bits) const {
  Quantized q;
  q.layers = layers_;
  q.frac_bits = frac_bits;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    std::vector<std::int32_t> w(weights_[l].size());
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = num::to_fx(weights_[l][i], frac_bits);
    q.weights.push_back(std::move(w));
    std::vector<std::int32_t> b(biases_[l].size());
    // Biases add to Q(2·frac) products before rescaling.
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = num::to_fx(biases_[l][i], 2 * frac_bits);
    }
    q.biases.push_back(std::move(b));
  }
  return q;
}

int predict_fixed(const Mlp::Quantized& net, const std::array<double, 2>& x,
                  const num::UMulFn& umul) {
  const int fb = net.frac_bits;
  std::vector<std::int32_t> cur{num::to_fx(x[0], fb), num::to_fx(x[1], fb)};
  for (std::size_t l = 0; l < net.weights.size(); ++l) {
    const int in = net.layers[l];
    const int out = net.layers[l + 1];
    std::vector<std::int32_t> next(static_cast<std::size_t>(out));
    for (int o = 0; o < out; ++o) {
      std::int64_t acc = net.biases[l][static_cast<std::size_t>(o)];  // Q(2fb)
      for (int i = 0; i < in; ++i) {
        acc += num::signed_mul(net.weights[l][static_cast<std::size_t>(o * in + i)],
                               cur[static_cast<std::size_t>(i)], umul);
      }
      std::int32_t v = num::sat_signed(acc >> fb, 16);  // back to Q(fb)
      const bool last = l + 1 == net.weights.size();
      if (!last && v < 0) v = 0;  // ReLU
      next[static_cast<std::size_t>(o)] = v;
    }
    cur = std::move(next);
  }
  return cur[1] > cur[0] ? 1 : 0;
}

double accuracy_fixed(const Mlp::Quantized& net, const Dataset& data,
                      const num::UMulFn& umul) {
  int correct = 0;
  for (std::size_t i = 0; i < data.x.size(); ++i) {
    if (predict_fixed(net, data.x[i], umul) == data.y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.x.size());
}

std::vector<int> predict_fixed_batch(const Mlp::Quantized& net,
                                     const std::vector<std::array<double, 2>>& xs,
                                     const Multiplier& mul) {
  const std::size_t S = xs.size();
  if (S == 0) return {};
  REALM_TRACE_SCOPE("nn/forward_batched");
  const int fb = net.frac_bits;

  // Activations feature-major: act[i * S + s] is sample s's i-th feature, so
  // each (o, i) weight's row batch reads one contiguous lane of samples.
  std::vector<std::int64_t> act(2 * S);
  for (std::size_t s = 0; s < S; ++s) {
    act[0 * S + s] = num::to_fx(xs[s][0], fb);
    act[1 * S + s] = num::to_fx(xs[s][1], fb);
  }

  std::vector<std::int64_t> acc, prod(S), next;
  std::uint64_t macs = 0;
  for (std::size_t l = 0; l < net.weights.size(); ++l) {
    const auto in = static_cast<std::size_t>(net.layers[l]);
    const auto out = static_cast<std::size_t>(net.layers[l + 1]);
    acc.assign(out * S, 0);
    for (std::size_t o = 0; o < out; ++o) {
      std::int64_t* a = acc.data() + o * S;
      for (std::size_t s = 0; s < S; ++s) a[s] = net.biases[l][o];  // Q(2fb)
      for (std::size_t i = 0; i < in; ++i) {
        num::signed_row_batch(net.weights[l][o * in + i], act.data() + i * S,
                              prod.data(), S, mul);
        for (std::size_t s = 0; s < S; ++s) a[s] += prod[s];
      }
    }
    macs += in * out * S;
    const bool last = l + 1 == net.weights.size();
    next.assign(out * S, 0);
    for (std::size_t o = 0; o < out; ++o) {
      const std::int64_t* a = acc.data() + o * S;
      for (std::size_t s = 0; s < S; ++s) {
        std::int32_t v = num::sat_signed(a[s] >> fb, 16);  // back to Q(fb)
        if (!last && v < 0) v = 0;                         // ReLU
        next[o * S + s] = v;
      }
    }
    act = std::move(next);
    next = {};
  }
  obs::counter_add(obs::Counter::kNnMacsBatched, macs);

  std::vector<int> labels(S);
  for (std::size_t s = 0; s < S; ++s) {
    labels[s] = act[1 * S + s] > act[0 * S + s] ? 1 : 0;
  }
  return labels;
}

double accuracy_fixed_batch(const Mlp::Quantized& net, const Dataset& data,
                            const Multiplier& mul) {
  const std::vector<int> pred = predict_fixed_batch(net, data.x, mul);
  int correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == data.y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.x.size());
}

}  // namespace realm::nn
