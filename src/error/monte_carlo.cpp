// Public error-characterization entry points.  All three engines run on the
// batched evaluation core (eval_engine) and the shared persistent thread
// pool; see include/realm/error/eval_engine.hpp for the architecture and the
// seed-stability invariant.  exhaustive() is defined alongside the engine in
// eval_engine.cpp so it can share the block-reduction kernels.

#include "realm/error/monte_carlo.hpp"

#include "realm/error/eval_engine.hpp"
#include "realm/obs/trace.hpp"

namespace realm::err {

ErrorMetrics monte_carlo(const Multiplier& design, const MonteCarloOptions& opts) {
  REALM_TRACE_SCOPE("mc/total");
  return monte_carlo_batched(design, opts, nullptr);
}

ErrorMetrics monte_carlo_histogram(const Multiplier& design, Histogram* hist,
                                   const MonteCarloOptions& opts) {
  // Same shard runner as monte_carlo — the two calls return identical
  // metrics for identical options; the histogram shards are private per
  // shard and merged in shard order.
  REALM_TRACE_SCOPE("mc/histogram");
  return monte_carlo_batched(design, opts, hist);
}

}  // namespace realm::err
