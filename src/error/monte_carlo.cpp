#include "realm/error/monte_carlo.hpp"

#include <thread>
#include <vector>

#include "realm/numeric/bits.hpp"
#include "realm/numeric/rng.hpp"

namespace realm::err {
namespace {

ErrorAccumulator run_shard(const Multiplier& design, std::uint64_t samples,
                           std::uint64_t seed) {
  num::Xoshiro256 rng{seed};
  const std::uint64_t range = std::uint64_t{1} << design.width();
  ErrorAccumulator acc;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const std::uint64_t a = rng.below(range);
    const std::uint64_t b = rng.below(range);
    if (a == 0 || b == 0) continue;  // relative error undefined
    const double exact = static_cast<double>(a) * static_cast<double>(b);
    acc.add((static_cast<double>(design.multiply(a, b)) - exact) / exact);
  }
  return acc;
}

}  // namespace

ErrorMetrics monte_carlo(const Multiplier& design, const MonteCarloOptions& opts) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const unsigned threads =
      opts.threads > 0 ? static_cast<unsigned>(opts.threads) : hw;

  if (threads <= 1) {
    // Derive the shard seed the same way as the parallel path so results are
    // identical regardless of thread count.
    std::uint64_t st = opts.seed;
    return run_shard(design, opts.samples, num::splitmix64(st)).metrics();
  }

  std::vector<ErrorAccumulator> shards(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  std::uint64_t st = opts.seed;
  std::vector<std::uint64_t> seeds(threads);
  for (auto& s : seeds) s = num::splitmix64(st);

  const std::uint64_t per = opts.samples / threads;
  const std::uint64_t rem = opts.samples % threads;
  for (unsigned ti = 0; ti < threads; ++ti) {
    const std::uint64_t n = per + (ti < rem ? 1 : 0);
    pool.emplace_back([&, ti, n] { shards[ti] = run_shard(design, n, seeds[ti]); });
  }
  for (auto& th : pool) th.join();

  ErrorAccumulator total;
  for (const auto& s : shards) total.merge(s);
  return total.metrics();
}

ErrorMetrics monte_carlo_histogram(const Multiplier& design, Histogram* hist,
                                   const MonteCarloOptions& opts) {
  std::uint64_t st = opts.seed;
  num::Xoshiro256 rng{num::splitmix64(st)};
  const std::uint64_t range = std::uint64_t{1} << design.width();
  ErrorAccumulator acc;
  for (std::uint64_t i = 0; i < opts.samples; ++i) {
    const std::uint64_t a = rng.below(range);
    const std::uint64_t b = rng.below(range);
    if (a == 0 || b == 0) continue;
    const double exact = static_cast<double>(a) * static_cast<double>(b);
    const double e = (static_cast<double>(design.multiply(a, b)) - exact) / exact;
    acc.add(e);
    if (hist != nullptr) hist->add(100.0 * e);
  }
  return acc.metrics();
}

ErrorMetrics exhaustive(const Multiplier& design, std::optional<std::uint64_t> lo,
                        std::optional<std::uint64_t> hi) {
  const std::uint64_t a0 = lo.value_or(0);
  const std::uint64_t a1 = hi.value_or(num::mask(design.width()));
  ErrorAccumulator acc;
  for (std::uint64_t a = a0; a <= a1; ++a) {
    for (std::uint64_t b = a0; b <= a1; ++b) {
      if (a == 0 || b == 0) continue;
      const double exact = static_cast<double>(a) * static_cast<double>(b);
      acc.add((static_cast<double>(design.multiply(a, b)) - exact) / exact);
    }
  }
  return acc.metrics();
}

}  // namespace realm::err
