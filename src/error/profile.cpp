#include "realm/error/profile.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "realm/numeric/bits.hpp"

namespace realm::err {

std::vector<ProfilePoint> error_profile(const Multiplier& design, std::uint64_t lo,
                                        std::uint64_t hi) {
  if (lo == 0 || hi < lo) throw std::invalid_argument("error_profile: need 0 < lo <= hi");
  std::vector<ProfilePoint> out;
  out.reserve((hi - lo + 1) * (hi - lo + 1));
  for (std::uint64_t a = lo; a <= hi; ++a) {
    for (std::uint64_t b = lo; b <= hi; ++b) {
      const double exact = static_cast<double>(a) * static_cast<double>(b);
      const double e =
          100.0 * (static_cast<double>(design.multiply(a, b)) - exact) / exact;
      out.push_back({a, b, e});
    }
  }
  return out;
}

std::string profile_to_csv(const std::vector<ProfilePoint>& points) {
  std::ostringstream os;
  os << "a,b,rel_error_pct\n";
  for (const auto& p : points) os << p.a << ',' << p.b << ',' << p.rel_error_pct << '\n';
  return os.str();
}

std::vector<SegmentStat> segment_error_map(const Multiplier& design, int m, int ka,
                                           int kb) {
  if (m < 1) throw std::invalid_argument("segment_error_map: M >= 1");
  if (ka < 1 || kb < 1 || ka >= design.width() || kb >= design.width()) {
    throw std::invalid_argument("segment_error_map: characteristic out of range");
  }
  const std::uint64_t base_a = std::uint64_t{1} << ka;
  const std::uint64_t base_b = std::uint64_t{1} << kb;

  struct Acc {
    double sum = 0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    std::uint64_t n = 0;
  };
  std::vector<Acc> acc(static_cast<std::size_t>(m) * static_cast<std::size_t>(m));

  for (std::uint64_t a = base_a; a < 2 * base_a; ++a) {
    // Segment index from the fraction MSBs: i = floor(x·M).
    const auto i = static_cast<int>(((a - base_a) * static_cast<std::uint64_t>(m)) / base_a);
    for (std::uint64_t b = base_b; b < 2 * base_b; ++b) {
      const auto j =
          static_cast<int>(((b - base_b) * static_cast<std::uint64_t>(m)) / base_b);
      const double exact = static_cast<double>(a) * static_cast<double>(b);
      const double e =
          100.0 * (static_cast<double>(design.multiply(a, b)) - exact) / exact;
      Acc& s = acc[static_cast<std::size_t>(i * m + j)];
      s.sum += e;
      s.mn = std::min(s.mn, e);
      s.mx = std::max(s.mx, e);
      ++s.n;
    }
  }

  std::vector<SegmentStat> out;
  out.reserve(acc.size());
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      const Acc& s = acc[static_cast<std::size_t>(i * m + j)];
      out.push_back({i, j, s.n ? s.sum / static_cast<double>(s.n) : 0.0,
                     s.n ? s.mn : 0.0, s.n ? s.mx : 0.0, s.n});
    }
  }
  return out;
}

std::string segments_to_csv(const std::vector<SegmentStat>& stats) {
  std::ostringstream os;
  os << "i,j,mean_rel_error_pct,min_rel_error_pct,max_rel_error_pct,samples\n";
  for (const auto& s : stats) {
    os << s.i << ',' << s.j << ',' << s.mean_rel_error_pct << ','
       << s.min_rel_error_pct << ',' << s.max_rel_error_pct << ',' << s.samples << '\n';
  }
  return os.str();
}

}  // namespace realm::err
