#include "realm/error/eval_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "realm/numeric/bits.hpp"
#include "realm/numeric/rng.hpp"
#include "realm/numeric/simd.hpp"
#include "realm/numeric/thread_pool.hpp"
#include "realm/obs/counters.hpp"
#include "realm/obs/trace.hpp"

namespace realm::err {
namespace {

unsigned resolve_threads(int requested) {
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Per-thread scratch: operand, product and error blocks.  thread_local so the
// persistent pool workers allocate once and reuse across shards and calls.
struct Scratch {
  std::vector<std::uint64_t> a, b, p;
  std::vector<double> e;
  Scratch() : a(kBatchPairs), b(kBatchPairs), p(kBatchPairs), e(kBatchPairs) {}
};

Scratch& scratch() {
  thread_local Scratch s;
  return s;
}

// Raw moments of one operand block.  The engine reduces each block to these
// five numbers with lane-parallel loops (no per-sample division for the
// variance) and folds blocks into an ErrorAccumulator through the
// numerically stable merge().
struct BlockStats {
  double sum = 0.0;      // Σ e
  double sumsq = 0.0;    // Σ e²
  double abs_sum = 0.0;  // Σ |e|
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::uint64_t n = 0;   // pairs with a defined relative error
};

// Fills an operand block from the shard's splitmix64 stream in counter form:
// pair i uses draws 2i and 2i+1, each mapped to `width` bits by taking the
// top bits (draws are uniform over 2^64, so the top-bit map is exactly
// uniform over [0, 2^width)).  No loop-carried dependency — vectorizes.
REALM_MULTIVERSION
void generate_block(std::uint64_t seed, std::uint64_t first_pair, int shift,
                    std::uint64_t* __restrict a, std::uint64_t* __restrict b,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t j = 2 * (first_pair + i);
    a[i] = num::splitmix64_at(seed, j) >> shift;
    b[i] = num::splitmix64_at(seed, j + 1) >> shift;
  }
}

// Fixed 8-lane vectors for the reduction, written with GCC vector extensions
// rather than left to the auto-vectorizer: every lane op is an IEEE
// elementwise op, so each target_clones ISA lowers the *same* arithmetic
// (zmm on AVX-512, 2×ymm on AVX2, SSE2 pairs on the default clone) and the
// result is bit-identical across clones, not just across thread counts.
// aligned(8): Scratch vectors only guarantee element alignment, so loads and
// stores must be emitted unaligned.
typedef double Vd __attribute__((vector_size(64), aligned(8)));
typedef std::uint64_t Vu __attribute__((vector_size(64), aligned(8)));
constexpr std::size_t kLanes = sizeof(Vd) / sizeof(double);

// Reduces a block of products to BlockStats and writes the per-pair relative
// errors to e[] (0 for skipped zero pairs) for the histogram pass.  Zero
// pairs are skipped exactly as in the scalar reference: the max() divisor
// keeps the (unconditional) division safe, and the mask blend forces e to
// exactly 0 so the pair drops out of the sums even for designs whose product
// is nonzero for a zero operand (e.g. TRUNC's correction constant); min/max
// and the count blend the pair away.  Lanes fold in fixed order and the tail
// runs the same formulas in scalar, so the result is deterministic.
REALM_MULTIVERSION
BlockStats reduce_block(const std::uint64_t* __restrict a,
                        const std::uint64_t* __restrict b,
                        const std::uint64_t* __restrict p, double* __restrict e,
                        std::size_t n) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const Vd vzero = Vd{};
  const Vd vone = vzero + 1.0;
  const Vd vinf = vzero + kInf;
  Vd vsum{}, vsumsq{}, vabs{}, vcnt{};
  Vd vmn = vinf, vmx = -vinf;

  const std::size_t main_n = n - n % kLanes;
  for (std::size_t i = 0; i < main_n; i += kLanes) {
    // All comparisons are on doubles — integer vector compares lower to
    // scalar extract sequences on GCC 12, FP compares to vcmppd + blends.
    // A pair is valid iff exact > 0 (operands are < 2^31, so the product
    // converts without losing the zero/nonzero distinction).
    const Vd ad = __builtin_convertvector(*reinterpret_cast<const Vu*>(a + i), Vd);
    const Vd bd = __builtin_convertvector(*reinterpret_cast<const Vu*>(b + i), Vd);
    const Vd pd = __builtin_convertvector(*reinterpret_cast<const Vu*>(p + i), Vd);
    const Vd exact = ad * bd;
    const Vd divisor = exact > vone ? exact : vone;  // 1.0 only for zero pairs
    const Vd eraw = (pd - exact) / divisor;
    const Vd validm = exact > vzero ? vone : vzero;
    const Vd ev = eraw * validm;  // exact 0 for zero pairs (eraw is finite)
    *reinterpret_cast<Vd*>(e + i) = ev;
    vsum += ev;
    vsumsq += ev * ev;
    vabs += reinterpret_cast<Vd>(reinterpret_cast<Vu>(ev) & 0x7fffffffffffffffULL);
    const Vd cmin = exact > vzero ? ev : vinf;
    const Vd cmax = exact > vzero ? ev : -vinf;
    vmn = vmn < cmin ? vmn : cmin;
    vmx = vmx > cmax ? vmx : cmax;
    vcnt += validm;
  }

  BlockStats s;
  double cnt = 0.0;
  for (std::size_t l = 0; l < kLanes; ++l) {
    s.sum += vsum[l];
    s.sumsq += vsumsq[l];
    s.abs_sum += vabs[l];
    s.min = std::min(s.min, vmn[l]);
    s.max = std::max(s.max, vmx[l]);
    cnt += vcnt[l];
  }
  for (std::size_t i = main_n; i < n; ++i) {
    const double exact = static_cast<double>(a[i]) * static_cast<double>(b[i]);
    const double eraw = (static_cast<double>(p[i]) - exact) / std::max(exact, 1.0);
    const double ev = exact > 0.0 ? eraw : 0.0;
    e[i] = ev;
    s.sum += ev;
    s.sumsq += ev * ev;
    s.abs_sum += std::fabs(ev);
    if (exact > 0.0) {
      s.min = std::min(s.min, ev);
      s.max = std::max(s.max, ev);
      cnt += 1.0;
    }
  }
  s.n = static_cast<std::uint64_t>(cnt);
  return s;
}

ErrorAccumulator stats_to_acc(const BlockStats& s) noexcept {
  if (s.n == 0) return {};
  const double mean = s.sum / static_cast<double>(s.n);
  // Σ(e - mean)² = Σe² - Σe·mean.  Blocks are small (≤ kBatchPairs) and |e|
  // is O(1), so the cancellation is benign; cross-block combination then
  // goes through the stable pairwise merge().
  return ErrorAccumulator::from_moments(s.n, mean, s.sumsq - s.sum * mean,
                                        s.abs_sum, s.min, s.max);
}

// One Monte-Carlo shard: generate → multiply_batch → reduce, kBatchPairs at
// a time.  Everything depends only on (seed, samples), never on which worker
// runs the shard.
ErrorAccumulator run_mc_shard(const Multiplier& design, std::uint64_t samples,
                              std::uint64_t seed, Histogram* hist) {
  REALM_TRACE_SCOPE("mc/shard");
  const int shift = 64 - design.width();
  Scratch& buf = scratch();
  ErrorAccumulator acc;

  std::uint64_t pair0 = 0;
  while (pair0 < samples) {
    const auto block = static_cast<std::size_t>(
        std::min<std::uint64_t>(samples - pair0, kBatchPairs));
    generate_block(seed, pair0, shift, buf.a.data(), buf.b.data(), block);
    design.multiply_batch(buf.a.data(), buf.b.data(), buf.p.data(), block);
    acc.merge(stats_to_acc(
        reduce_block(buf.a.data(), buf.b.data(), buf.p.data(), buf.e.data(), block)));
    if (hist != nullptr) {
      for (std::size_t i = 0; i < block; ++i) {
        if (buf.a[i] != 0 && buf.b[i] != 0) hist->add(100.0 * buf.e[i]);
      }
    }
    pair0 += block;
  }
  obs::counter_add(obs::Counter::kMcSamples, samples);
  obs::counter_add(obs::Counter::kMcShards, 1);
  return acc;
}

}  // namespace

ErrorMetrics monte_carlo_batched(const Multiplier& design,
                                 const MonteCarloOptions& opts, Histogram* hist) {
  REALM_TRACE_SCOPE("mc/run");
  const std::uint64_t shards = mc_shard_count(opts.samples);

  // Seed-stability invariant: shard seeds come from the splitmix64 sequence
  // over the user seed, in shard order, exactly as the seed implementation
  // derived its per-thread seeds — but the shard count is a function of the
  // sample budget alone, so the merged result is independent of how many
  // threads execute the shards.
  std::uint64_t st = opts.seed;
  std::vector<std::uint64_t> seeds(shards);
  for (auto& s : seeds) s = num::splitmix64(st);

  const std::uint64_t per = opts.samples / shards;
  const std::uint64_t rem = opts.samples % shards;

  std::vector<ErrorAccumulator> accs(shards);
  std::vector<Histogram> shard_hists;
  if (hist != nullptr) {
    shard_hists.assign(static_cast<std::size_t>(shards),
                       Histogram{hist->lo(), hist->hi(), hist->bins()});
  }

  num::ThreadPool::global().run(
      static_cast<std::size_t>(shards), resolve_threads(opts.threads),
      [&](std::size_t si) {
        const std::uint64_t n = per + (si < rem ? 1 : 0);
        accs[si] = run_mc_shard(design, n, seeds[si],
                                hist != nullptr ? &shard_hists[si] : nullptr);
      });

  REALM_TRACE_SCOPE("mc/merge");
  ErrorAccumulator total;
  for (const auto& acc : accs) total.merge(acc);
  if (hist != nullptr) {
    for (const auto& h : shard_hists) hist->merge(h);
  }
  return total.metrics();
}

ErrorMetrics exhaustive(const Multiplier& design, std::optional<std::uint64_t> lo,
                        std::optional<std::uint64_t> hi, int threads) {
  const std::uint64_t a0 = lo.value_or(0);
  const std::uint64_t a1 = hi.value_or(num::mask(design.width()));
  if (a1 < a0) return ErrorMetrics{};
  const std::uint64_t rows = a1 - a0 + 1;

  // Row-range sharding.  The shard grid depends only on the input range
  // (never the thread count), and shards merge in row order, so the result
  // is deterministic for any parallelism.
  const std::uint64_t shards = std::min<std::uint64_t>(rows, kExhaustiveShards);
  const std::uint64_t rows_per = rows / shards;
  const std::uint64_t rows_rem = rows % shards;

  std::vector<ErrorAccumulator> accs(shards);
  num::ThreadPool::global().run(
      static_cast<std::size_t>(shards), resolve_threads(threads),
      [&](std::size_t si) {
        // Shard si covers rows [r0, r0 + n_rows); the first rows_rem shards
        // take one extra row.
        const std::uint64_t r0 =
            a0 + si * rows_per + std::min<std::uint64_t>(si, rows_rem);
        const std::uint64_t n_rows = rows_per + (si < rows_rem ? 1 : 0);

        REALM_TRACE_SCOPE("exhaustive/shard");
        obs::counter_add(obs::Counter::kMcSamples, n_rows * (a1 - a0 + 1));
        obs::counter_add(obs::Counter::kMcShards, 1);
        Scratch& buf = scratch();
        ErrorAccumulator acc;
        for (std::uint64_t a = r0; a < r0 + n_rows; ++a) {
          std::uint64_t b = a0;
          while (b <= a1) {
            const auto block = static_cast<std::size_t>(
                std::min<std::uint64_t>(a1 - b + 1, kBatchPairs));
            for (std::size_t i = 0; i < block; ++i) {
              buf.a[i] = a;
              buf.b[i] = b + i;
            }
            design.multiply_batch(buf.a.data(), buf.b.data(), buf.p.data(), block);
            acc.merge(stats_to_acc(reduce_block(buf.a.data(), buf.b.data(),
                                                buf.p.data(), buf.e.data(), block)));
            b += block;
          }
        }
        accs[si] = acc;
      });

  ErrorAccumulator total;
  for (const auto& acc : accs) total.merge(acc);
  return total.metrics();
}

ErrorMetrics monte_carlo_scalar_reference(const Multiplier& design,
                                          const MonteCarloOptions& opts) {
  // Verbatim port of the pre-engine implementation (see file header).
  const auto scalar_shard = [&design](std::uint64_t samples, std::uint64_t seed) {
    num::Xoshiro256 rng{seed};
    const std::uint64_t range = std::uint64_t{1} << design.width();
    ErrorAccumulator acc;
    for (std::uint64_t i = 0; i < samples; ++i) {
      const std::uint64_t a = rng.below(range);
      const std::uint64_t b = rng.below(range);
      if (a == 0 || b == 0) continue;
      const double exact = static_cast<double>(a) * static_cast<double>(b);
      acc.add((static_cast<double>(design.multiply(a, b)) - exact) / exact);
    }
    return acc;
  };

  const unsigned threads = resolve_threads(opts.threads);
  if (threads <= 1) {
    std::uint64_t st = opts.seed;
    return scalar_shard(opts.samples, num::splitmix64(st)).metrics();
  }

  std::vector<ErrorAccumulator> shards(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  std::uint64_t st = opts.seed;
  std::vector<std::uint64_t> seeds(threads);
  for (auto& s : seeds) s = num::splitmix64(st);

  const std::uint64_t per = opts.samples / threads;
  const std::uint64_t rem = opts.samples % threads;
  for (unsigned ti = 0; ti < threads; ++ti) {
    const std::uint64_t n = per + (ti < rem ? 1 : 0);
    pool.emplace_back(
        [&, ti, n] { shards[ti] = scalar_shard(n, seeds[ti]); });
  }
  for (auto& th : pool) th.join();

  ErrorAccumulator total;
  for (const auto& s : shards) total.merge(s);
  return total.metrics();
}

}  // namespace realm::err
