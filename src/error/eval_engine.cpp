#include "realm/error/eval_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "realm/numeric/bits.hpp"
#include "realm/numeric/rng.hpp"
#include "realm/numeric/simd.hpp"
#include "realm/numeric/thread_pool.hpp"
#include "realm/obs/counters.hpp"
#include "realm/obs/trace.hpp"

namespace realm::err {
namespace {

unsigned resolve_threads(int requested) {
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Per-thread scratch: operand, product and error blocks.  thread_local so the
// persistent pool workers allocate once and reuse across shards and calls.
struct Scratch {
  std::vector<std::uint64_t> a, b, p;
  std::vector<double> e;
  Scratch() : a(kBatchPairs), b(kBatchPairs), p(kBatchPairs), e(kBatchPairs) {}
};

Scratch& scratch() {
  thread_local Scratch s;
  return s;
}

// Raw moments of one operand block.  The engine reduces each block to these
// five numbers with lane-parallel loops (no per-sample division for the
// variance) and folds blocks into an ErrorAccumulator through the
// numerically stable merge().
struct BlockStats {
  double sum = 0.0;      // Σ e
  double sumsq = 0.0;    // Σ e²
  double abs_sum = 0.0;  // Σ |e|
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::uint64_t n = 0;   // pairs with a defined relative error
};

// Fills an operand block from the shard's splitmix64 stream in counter form:
// pair i uses draws 2i and 2i+1, each mapped to `width` bits by taking the
// top bits (draws are uniform over 2^64, so the top-bit map is exactly
// uniform over [0, 2^width)).  No loop-carried dependency — vectorizes.
REALM_MULTIVERSION
void generate_block(std::uint64_t seed, std::uint64_t first_pair, int shift,
                    std::uint64_t* __restrict a, std::uint64_t* __restrict b,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t j = 2 * (first_pair + i);
    a[i] = num::splitmix64_at(seed, j) >> shift;
    b[i] = num::splitmix64_at(seed, j + 1) >> shift;
  }
}

// Fixed 8-lane vectors for the reduction, written with GCC vector extensions
// rather than left to the auto-vectorizer: every lane op is an IEEE
// elementwise op, so each target_clones ISA lowers the *same* arithmetic
// (zmm on AVX-512, 2×ymm on AVX2, SSE2 pairs on the default clone) and the
// result is bit-identical across clones, not just across thread counts.
// aligned(8): Scratch vectors only guarantee element alignment, so loads and
// stores must be emitted unaligned.
typedef double Vd __attribute__((vector_size(64), aligned(8)));
typedef std::uint64_t Vu __attribute__((vector_size(64), aligned(8)));
constexpr std::size_t kLanes = sizeof(Vd) / sizeof(double);

// Reduces a block of products to BlockStats and writes the per-pair relative
// errors to e[] (0 for skipped zero pairs) for the histogram pass.  Zero
// pairs are skipped exactly as in the scalar reference: the max() divisor
// keeps the (unconditional) division safe, and the mask blend forces e to
// exactly 0 so the pair drops out of the sums even for designs whose product
// is nonzero for a zero operand (e.g. TRUNC's correction constant); min/max
// and the count blend the pair away.  Lanes fold in fixed order and the tail
// runs the same formulas in scalar, so the result is deterministic.
REALM_MULTIVERSION
BlockStats reduce_block(const std::uint64_t* __restrict a,
                        const std::uint64_t* __restrict b,
                        const std::uint64_t* __restrict p, double* __restrict e,
                        std::size_t n) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const Vd vzero = Vd{};
  const Vd vone = vzero + 1.0;
  const Vd vinf = vzero + kInf;
  Vd vsum{}, vsumsq{}, vabs{}, vcnt{};
  Vd vmn = vinf, vmx = -vinf;

  const std::size_t main_n = n - n % kLanes;
  for (std::size_t i = 0; i < main_n; i += kLanes) {
    // All comparisons are on doubles — integer vector compares lower to
    // scalar extract sequences on GCC 12, FP compares to vcmppd + blends.
    // A pair is valid iff exact > 0 (operands are < 2^31, so the product
    // converts without losing the zero/nonzero distinction).
    const Vd ad = __builtin_convertvector(*reinterpret_cast<const Vu*>(a + i), Vd);
    const Vd bd = __builtin_convertvector(*reinterpret_cast<const Vu*>(b + i), Vd);
    const Vd pd = __builtin_convertvector(*reinterpret_cast<const Vu*>(p + i), Vd);
    const Vd exact = ad * bd;
    const Vd divisor = exact > vone ? exact : vone;  // 1.0 only for zero pairs
    const Vd eraw = (pd - exact) / divisor;
    const Vd validm = exact > vzero ? vone : vzero;
    const Vd ev = eraw * validm;  // exact 0 for zero pairs (eraw is finite)
    *reinterpret_cast<Vd*>(e + i) = ev;
    vsum += ev;
    vsumsq += ev * ev;
    vabs += reinterpret_cast<Vd>(reinterpret_cast<Vu>(ev) & 0x7fffffffffffffffULL);
    const Vd cmin = exact > vzero ? ev : vinf;
    const Vd cmax = exact > vzero ? ev : -vinf;
    vmn = vmn < cmin ? vmn : cmin;
    vmx = vmx > cmax ? vmx : cmax;
    vcnt += validm;
  }

  BlockStats s;
  double cnt = 0.0;
  for (std::size_t l = 0; l < kLanes; ++l) {
    s.sum += vsum[l];
    s.sumsq += vsumsq[l];
    s.abs_sum += vabs[l];
    s.min = std::min(s.min, vmn[l]);
    s.max = std::max(s.max, vmx[l]);
    cnt += vcnt[l];
  }
  for (std::size_t i = main_n; i < n; ++i) {
    const double exact = static_cast<double>(a[i]) * static_cast<double>(b[i]);
    const double eraw = (static_cast<double>(p[i]) - exact) / std::max(exact, 1.0);
    const double ev = exact > 0.0 ? eraw : 0.0;
    e[i] = ev;
    s.sum += ev;
    s.sumsq += ev * ev;
    s.abs_sum += std::fabs(ev);
    if (exact > 0.0) {
      s.min = std::min(s.min, ev);
      s.max = std::max(s.max, ev);
      cnt += 1.0;
    }
  }
  s.n = static_cast<std::uint64_t>(cnt);
  return s;
}

ErrorAccumulator stats_to_acc(const BlockStats& s) noexcept {
  if (s.n == 0) return {};
  const double mean = s.sum / static_cast<double>(s.n);
  // Σ(e - mean)² = Σe² - Σe·mean.  Blocks are small (≤ kBatchPairs) and |e|
  // is O(1), so the cancellation is benign; cross-block combination then
  // goes through the stable pairwise merge().
  return ErrorAccumulator::from_moments(s.n, mean, s.sumsq - s.sum * mean,
                                        s.abs_sum, s.min, s.max);
}

// Reduces a fixed-operand block — products of (a, b0 + i) for i in [0, n) —
// to BlockStats.  Performs the *identical* IEEE operations on the identical
// values in the identical order as reduce_block would on materialized
// operand buffers (the broadcast of a and the column iota convert to the
// same doubles), so the tiled exhaustive engine is bit-identical to the
// generic-batched reference; the operands are simply never stored or
// re-loaded.
REALM_MULTIVERSION
BlockStats reduce_row_block(std::uint64_t a, std::uint64_t b0,
                            const std::uint64_t* __restrict p,
                            double* __restrict e, std::size_t n) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const Vd vzero = Vd{};
  const Vd vone = vzero + 1.0;
  const Vd vinf = vzero + kInf;
  const Vd ad = vzero + static_cast<double>(a);
  const Vu iota = {0, 1, 2, 3, 4, 5, 6, 7};
  Vd vsum{}, vsumsq{}, vabs{}, vcnt{};
  Vd vmn = vinf, vmx = -vinf;

  const std::size_t main_n = n - n % kLanes;
  for (std::size_t i = 0; i < main_n; i += kLanes) {
    const Vu bu = (Vu{} + (b0 + i)) + iota;
    const Vd bd = __builtin_convertvector(bu, Vd);
    const Vd pd = __builtin_convertvector(*reinterpret_cast<const Vu*>(p + i), Vd);
    const Vd exact = ad * bd;
    const Vd divisor = exact > vone ? exact : vone;
    const Vd eraw = (pd - exact) / divisor;
    const Vd validm = exact > vzero ? vone : vzero;
    const Vd ev = eraw * validm;
    *reinterpret_cast<Vd*>(e + i) = ev;
    vsum += ev;
    vsumsq += ev * ev;
    vabs += reinterpret_cast<Vd>(reinterpret_cast<Vu>(ev) & 0x7fffffffffffffffULL);
    const Vd cmin = exact > vzero ? ev : vinf;
    const Vd cmax = exact > vzero ? ev : -vinf;
    vmn = vmn < cmin ? vmn : cmin;
    vmx = vmx > cmax ? vmx : cmax;
    vcnt += validm;
  }

  BlockStats s;
  double cnt = 0.0;
  for (std::size_t l = 0; l < kLanes; ++l) {
    s.sum += vsum[l];
    s.sumsq += vsumsq[l];
    s.abs_sum += vabs[l];
    s.min = std::min(s.min, vmn[l]);
    s.max = std::max(s.max, vmx[l]);
    cnt += vcnt[l];
  }
  for (std::size_t i = main_n; i < n; ++i) {
    const double exact = static_cast<double>(a) * static_cast<double>(b0 + i);
    const double eraw =
        (static_cast<double>(p[i]) - exact) / std::max(exact, 1.0);
    const double ev = exact > 0.0 ? eraw : 0.0;
    e[i] = ev;
    s.sum += ev;
    s.sumsq += ev * ev;
    s.abs_sum += std::fabs(ev);
    if (exact > 0.0) {
      s.min = std::min(s.min, ev);
      s.max = std::max(s.max, ev);
      cnt += 1.0;
    }
  }
  s.n = static_cast<std::uint64_t>(cnt);
  return s;
}

// One Monte-Carlo shard: generate → multiply_batch → reduce, kBatchPairs at
// a time.  Everything depends only on (seed, samples), never on which worker
// runs the shard.
ErrorAccumulator run_mc_shard(const Multiplier& design, std::uint64_t samples,
                              std::uint64_t seed, Histogram* hist) {
  REALM_TRACE_SCOPE("mc/shard");
  const int shift = 64 - design.width();
  Scratch& buf = scratch();
  ErrorAccumulator acc;

  std::uint64_t pair0 = 0;
  while (pair0 < samples) {
    const auto block = static_cast<std::size_t>(
        std::min<std::uint64_t>(samples - pair0, kBatchPairs));
    generate_block(seed, pair0, shift, buf.a.data(), buf.b.data(), block);
    design.multiply_batch(buf.a.data(), buf.b.data(), buf.p.data(), block);
    acc.merge(stats_to_acc(
        reduce_block(buf.a.data(), buf.b.data(), buf.p.data(), buf.e.data(), block)));
    if (hist != nullptr) {
      for (std::size_t i = 0; i < block; ++i) {
        if (buf.a[i] != 0 && buf.b[i] != 0) hist->add(100.0 * buf.e[i]);
      }
    }
    pair0 += block;
  }
  obs::counter_add(obs::Counter::kMcSamples, samples);
  obs::counter_add(obs::Counter::kMcShards, 1);
  return acc;
}

// Working peak state of one exhaustive shard.  Errors are kept as fractions
// (not percent) so peak comparisons use the exact values reduce_row_block
// produced; conversion to percent happens once in the final report.
struct ShardPeaks {
  double min_frac = std::numeric_limits<double>::infinity();
  double max_frac = -std::numeric_limits<double>::infinity();
  std::uint64_t min_a = 0, min_b = 0, min_p = 0;
  std::uint64_t max_a = 0, max_b = 0, max_p = 0;
  bool valid = false;  // some pair with exact > 0 was seen
};

// Records the first column of the block whose error equals `target`.  Called
// only when a block's min/max beats the shard's running peak, so the scan is
// rare and the common path stays vectorized; "first in scan order" makes the
// witness deterministic.  The b != 0 guard keeps a zero pair's forced e = 0
// from matching a genuine 0.0 peak (e.g. the accurate design's max).
void rescan_peak(std::uint64_t a, std::uint64_t b0, const std::uint64_t* p,
                 const double* e, std::size_t n, double target,
                 std::uint64_t& wa, std::uint64_t& wb, std::uint64_t& wp) {
  for (std::size_t i = 0; i < n; ++i) {
    if (b0 + i != 0 && e[i] == target) {
      wa = a;
      wb = b0 + i;
      wp = p[i];
      return;
    }
  }
}

struct ExhaustiveShardOut {
  ErrorAccumulator acc;
  ShardPeaks peaks;
};

// One exhaustive shard: rows [r0, r0 + n_rows) × columns [b_lo, b_hi], each
// row through multiply_row_range in kBatchPairs-column tiles (one tile ≈
// 64 KiB of product + error working set, L2-resident).  Fold order matches
// exhaustive_generic_reference exactly: per row, column tiles in ascending
// order, blocks merged as they complete.
ExhaustiveShardOut run_exhaustive_shard(const Multiplier& design,
                                        std::uint64_t r0, std::uint64_t n_rows,
                                        std::uint64_t b_lo, std::uint64_t b_hi,
                                        Histogram* hist) {
  REALM_TRACE_SCOPE("exhaustive/shard");
  Scratch& buf = scratch();
  ExhaustiveShardOut out;
  std::uint64_t tiles = 0;
  for (std::uint64_t a = r0; a < r0 + n_rows; ++a) {
    std::uint64_t b = b_lo;
    while (b <= b_hi) {
      const auto block = static_cast<std::size_t>(
          std::min<std::uint64_t>(b_hi - b + 1, kBatchPairs));
      design.multiply_row_range(a, b, buf.p.data(), block);
      const BlockStats s =
          reduce_row_block(a, b, buf.p.data(), buf.e.data(), block);
      out.acc.merge(stats_to_acc(s));
      if (s.n != 0) {
        if (s.min < out.peaks.min_frac) {
          out.peaks.min_frac = s.min;
          rescan_peak(a, b, buf.p.data(), buf.e.data(), block, s.min,
                      out.peaks.min_a, out.peaks.min_b, out.peaks.min_p);
        }
        if (s.max > out.peaks.max_frac) {
          out.peaks.max_frac = s.max;
          rescan_peak(a, b, buf.p.data(), buf.e.data(), block, s.max,
                      out.peaks.max_a, out.peaks.max_b, out.peaks.max_p);
        }
        out.peaks.valid = true;
      }
      if (hist != nullptr) {
        for (std::size_t i = 0; i < block; ++i) {
          if (a != 0 && b + i != 0) hist->add(100.0 * buf.e[i]);
        }
      }
      ++tiles;
      b += block;
    }
  }
  obs::counter_add(obs::Counter::kMcSamples, n_rows * (b_hi - b_lo + 1));
  obs::counter_add(obs::Counter::kMcShards, 1);
  obs::counter_add(obs::Counter::kExhaustiveRows, n_rows);
  obs::counter_add(obs::Counter::kExhaustiveTiles, tiles);
  return out;
}

}  // namespace

ErrorMetrics monte_carlo_batched(const Multiplier& design,
                                 const MonteCarloOptions& opts, Histogram* hist) {
  REALM_TRACE_SCOPE("mc/run");
  const std::uint64_t shards = mc_shard_count(opts.samples);

  // Seed-stability invariant: shard seeds come from the splitmix64 sequence
  // over the user seed, in shard order, exactly as the seed implementation
  // derived its per-thread seeds — but the shard count is a function of the
  // sample budget alone, so the merged result is independent of how many
  // threads execute the shards.
  std::uint64_t st = opts.seed;
  std::vector<std::uint64_t> seeds(shards);
  for (auto& s : seeds) s = num::splitmix64(st);

  const std::uint64_t per = opts.samples / shards;
  const std::uint64_t rem = opts.samples % shards;

  std::vector<ErrorAccumulator> accs(shards);
  std::vector<Histogram> shard_hists;
  if (hist != nullptr) {
    shard_hists.assign(static_cast<std::size_t>(shards),
                       Histogram{hist->lo(), hist->hi(), hist->bins()});
  }

  num::ThreadPool::global().run(
      static_cast<std::size_t>(shards), resolve_threads(opts.threads),
      [&](std::size_t si) {
        const std::uint64_t n = per + (si < rem ? 1 : 0);
        accs[si] = run_mc_shard(design, n, seeds[si],
                                hist != nullptr ? &shard_hists[si] : nullptr);
      });

  REALM_TRACE_SCOPE("mc/merge");
  ErrorAccumulator total;
  for (const auto& acc : accs) total.merge(acc);
  if (hist != nullptr) {
    for (const auto& h : shard_hists) hist->merge(h);
  }
  return total.metrics();
}

ErrorMetrics exhaustive_generic_reference(const Multiplier& design,
                                          std::optional<std::uint64_t> lo,
                                          std::optional<std::uint64_t> hi,
                                          int threads) {
  const std::uint64_t a0 = lo.value_or(0);
  const std::uint64_t a1 = hi.value_or(num::mask(design.width()));
  if (a1 < a0) return ErrorMetrics{};
  const std::uint64_t rows = a1 - a0 + 1;

  // Row-range sharding.  The shard grid depends only on the input range
  // (never the thread count), and shards merge in row order, so the result
  // is deterministic for any parallelism.
  const std::uint64_t shards = std::min<std::uint64_t>(rows, kExhaustiveShards);
  const std::uint64_t rows_per = rows / shards;
  const std::uint64_t rows_rem = rows % shards;

  std::vector<ErrorAccumulator> accs(shards);
  num::ThreadPool::global().run(
      static_cast<std::size_t>(shards), resolve_threads(threads),
      [&](std::size_t si) {
        // Shard si covers rows [r0, r0 + n_rows); the first rows_rem shards
        // take one extra row.
        const std::uint64_t r0 =
            a0 + si * rows_per + std::min<std::uint64_t>(si, rows_rem);
        const std::uint64_t n_rows = rows_per + (si < rows_rem ? 1 : 0);

        REALM_TRACE_SCOPE("exhaustive/shard");
        obs::counter_add(obs::Counter::kMcSamples, n_rows * (a1 - a0 + 1));
        obs::counter_add(obs::Counter::kMcShards, 1);
        Scratch& buf = scratch();
        ErrorAccumulator acc;
        for (std::uint64_t a = r0; a < r0 + n_rows; ++a) {
          std::uint64_t b = a0;
          while (b <= a1) {
            const auto block = static_cast<std::size_t>(
                std::min<std::uint64_t>(a1 - b + 1, kBatchPairs));
            for (std::size_t i = 0; i < block; ++i) {
              buf.a[i] = a;
              buf.b[i] = b + i;
            }
            design.multiply_batch(buf.a.data(), buf.b.data(), buf.p.data(), block);
            acc.merge(stats_to_acc(reduce_block(buf.a.data(), buf.b.data(),
                                                buf.p.data(), buf.e.data(), block)));
            b += block;
          }
        }
        accs[si] = acc;
      });

  ErrorAccumulator total;
  for (const auto& acc : accs) total.merge(acc);
  return total.metrics();
}

ExhaustiveReport exhaustive_report(const Multiplier& design, Histogram* hist,
                                   std::optional<std::uint64_t> lo,
                                   std::optional<std::uint64_t> hi, int threads) {
  const std::uint64_t full = num::mask(design.width());
  const std::uint64_t a0 = lo.value_or(0);
  const std::uint64_t a1 = hi.value_or(full);
  if (a0 > a1) {
    throw std::invalid_argument("exhaustive: lo (" + std::to_string(a0) +
                                ") must be <= hi (" + std::to_string(a1) + ")");
  }
  if (a1 > full) {
    throw std::invalid_argument("exhaustive: hi (" + std::to_string(a1) +
                                ") must be < 2^width (width " +
                                std::to_string(design.width()) + ")");
  }

  REALM_TRACE_SCOPE("exhaustive/run");
  const std::uint64_t rows = a1 - a0 + 1;

  // Seed-stability invariant: the shard grid is a fixed function of the
  // input range (kExhaustiveShards row blocks, capped by the row count),
  // never of the thread count, and shards merge in shard order below.
  const std::uint64_t shards = std::min<std::uint64_t>(rows, kExhaustiveShards);
  const std::uint64_t rows_per = rows / shards;
  const std::uint64_t rows_rem = rows % shards;

  std::vector<ExhaustiveShardOut> outs(shards);
  std::vector<Histogram> shard_hists;
  if (hist != nullptr) {
    shard_hists.assign(static_cast<std::size_t>(shards),
                       Histogram{hist->lo(), hist->hi(), hist->bins()});
  }

  num::ThreadPool::global().run(
      static_cast<std::size_t>(shards), resolve_threads(threads),
      [&](std::size_t si) {
        const std::uint64_t r0 =
            a0 + si * rows_per + std::min<std::uint64_t>(si, rows_rem);
        const std::uint64_t n_rows = rows_per + (si < rows_rem ? 1 : 0);
        outs[si] = run_exhaustive_shard(design, r0, n_rows, a0, a1,
                                        hist != nullptr ? &shard_hists[si] : nullptr);
      });

  ErrorAccumulator total;
  ShardPeaks best;
  for (const auto& o : outs) {
    total.merge(o.acc);
    if (!o.peaks.valid) continue;
    // Strict comparisons in shard order: ties keep the earliest shard's
    // witness, which is also the first in (a, b) scan order.
    if (o.peaks.min_frac < best.min_frac) {
      best.min_frac = o.peaks.min_frac;
      best.min_a = o.peaks.min_a;
      best.min_b = o.peaks.min_b;
      best.min_p = o.peaks.min_p;
    }
    if (o.peaks.max_frac > best.max_frac) {
      best.max_frac = o.peaks.max_frac;
      best.max_a = o.peaks.max_a;
      best.max_b = o.peaks.max_b;
      best.max_p = o.peaks.max_p;
    }
    best.valid = true;
  }
  if (hist != nullptr) {
    for (const auto& h : shard_hists) hist->merge(h);
  }

  ExhaustiveReport rep;
  rep.metrics = total.metrics();
  rep.pairs = rows * rows;
  if (best.valid) {
    rep.min_peak = {best.min_a, best.min_b, best.min_p, 100.0 * best.min_frac, true};
    rep.max_peak = {best.max_a, best.max_b, best.max_p, 100.0 * best.max_frac, true};
  }
  return rep;
}

ErrorMetrics exhaustive(const Multiplier& design, std::optional<std::uint64_t> lo,
                        std::optional<std::uint64_t> hi, int threads) {
  return exhaustive_report(design, nullptr, lo, hi, threads).metrics;
}

ErrorMetrics exhaustive_scalar_reference(const Multiplier& design,
                                         std::optional<std::uint64_t> lo,
                                         std::optional<std::uint64_t> hi) {
  const std::uint64_t a0 = lo.value_or(0);
  const std::uint64_t a1 = hi.value_or(num::mask(design.width()));
  ErrorAccumulator acc;
  for (std::uint64_t a = a0; a <= a1; ++a) {
    for (std::uint64_t b = a0; b <= a1; ++b) {
      acc.add_pair(static_cast<double>(design.multiply(a, b)),
                   static_cast<double>(a) * static_cast<double>(b));
    }
  }
  return acc.metrics();
}

ErrorMetrics monte_carlo_scalar_reference(const Multiplier& design,
                                          const MonteCarloOptions& opts) {
  // Verbatim port of the pre-engine implementation (see file header).
  const auto scalar_shard = [&design](std::uint64_t samples, std::uint64_t seed) {
    num::Xoshiro256 rng{seed};
    const std::uint64_t range = std::uint64_t{1} << design.width();
    ErrorAccumulator acc;
    for (std::uint64_t i = 0; i < samples; ++i) {
      const std::uint64_t a = rng.below(range);
      const std::uint64_t b = rng.below(range);
      if (a == 0 || b == 0) continue;
      const double exact = static_cast<double>(a) * static_cast<double>(b);
      acc.add((static_cast<double>(design.multiply(a, b)) - exact) / exact);
    }
    return acc;
  };

  const unsigned threads = resolve_threads(opts.threads);
  if (threads <= 1) {
    std::uint64_t st = opts.seed;
    return scalar_shard(opts.samples, num::splitmix64(st)).metrics();
  }

  std::vector<ErrorAccumulator> shards(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  std::uint64_t st = opts.seed;
  std::vector<std::uint64_t> seeds(threads);
  for (auto& s : seeds) s = num::splitmix64(st);

  const std::uint64_t per = opts.samples / threads;
  const std::uint64_t rem = opts.samples % threads;
  for (unsigned ti = 0; ti < threads; ++ti) {
    const std::uint64_t n = per + (ti < rem ? 1 : 0);
    pool.emplace_back(
        [&, ti, n] { shards[ti] = scalar_shard(n, seeds[ti]); });
  }
  for (auto& th : pool) th.join();

  ErrorAccumulator total;
  for (const auto& s : shards) total.merge(s);
  return total.metrics();
}

}  // namespace realm::err
