#include "realm/error/render.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace realm::err {
namespace {

struct GridShape {
  std::uint64_t lo, hi;
  int side;
};

GridShape grid_shape(const std::vector<ProfilePoint>& points) {
  if (points.empty()) throw std::invalid_argument("render: empty profile");
  const std::uint64_t lo = points.front().a;
  const std::uint64_t hi = points.back().a;
  const auto side = static_cast<int>(hi - lo + 1);
  if (points.size() != static_cast<std::size_t>(side) * static_cast<std::size_t>(side)) {
    throw std::invalid_argument("render: profile is not a full square grid");
  }
  return {lo, hi, side};
}

}  // namespace

jpeg::Image render_profile_heatmap(const std::vector<ProfilePoint>& points,
                                   double scale_pct) {
  if (scale_pct <= 0.0) throw std::invalid_argument("render: scale_pct > 0");
  const GridShape g = grid_shape(points);
  jpeg::Image img{g.side, g.side};
  for (const auto& p : points) {
    const auto x = static_cast<int>(p.a - g.lo);
    const auto y = static_cast<int>(p.b - g.lo);
    const double v = std::clamp(p.rel_error_pct / scale_pct, -1.0, 1.0);
    img.set(x, g.side - 1 - y,  // b grows upward, image rows grow downward
            static_cast<std::uint8_t>(std::lround(127.5 + 127.5 * v)));
  }
  return img;
}

void write_profile_ppm(const std::vector<ProfilePoint>& points, double scale_pct,
                       const std::string& path) {
  if (scale_pct <= 0.0) throw std::invalid_argument("render: scale_pct > 0");
  const GridShape g = grid_shape(points);
  std::vector<std::uint8_t> rgb(static_cast<std::size_t>(g.side) *
                                static_cast<std::size_t>(g.side) * 3);
  for (const auto& p : points) {
    const auto x = static_cast<int>(p.a - g.lo);
    const auto y = g.side - 1 - static_cast<int>(p.b - g.lo);
    const double v = std::clamp(p.rel_error_pct / scale_pct, -1.0, 1.0);
    // Diverging blue-white-red: |v| pulls the complementary channels down.
    const auto away = static_cast<std::uint8_t>(std::lround(255.0 * (1.0 - std::fabs(v))));
    std::uint8_t r = 255, gch = 255, b = 255;
    if (v > 0) {
      gch = away;
      b = away;
    } else if (v < 0) {
      r = away;
      gch = away;
    }
    const std::size_t base =
        (static_cast<std::size_t>(y) * static_cast<std::size_t>(g.side) +
         static_cast<std::size_t>(x)) * 3;
    rgb[base] = r;
    rgb[base + 1] = gch;
    rgb[base + 2] = b;
  }
  std::ofstream os{path, std::ios::binary};
  if (!os) throw std::runtime_error("write_profile_ppm: cannot open " + path);
  os << "P6\n" << g.side << ' ' << g.side << "\n255\n";
  os.write(reinterpret_cast<const char*>(rgb.data()),
           static_cast<std::streamsize>(rgb.size()));
  if (!os) throw std::runtime_error("write_profile_ppm: write failed for " + path);
}

}  // namespace realm::err
