#include "realm/error/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace realm::err {

double ErrorMetrics::peak() const noexcept { return std::max(std::fabs(min), std::fabs(max)); }

std::string ErrorMetrics::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "bias=%+.2f%% mean=%.2f%% min=%+.2f%% max=%+.2f%% var=%.2f (n=%llu)",
                bias, mean, min, max, variance,
                static_cast<unsigned long long>(samples));
  return buf;
}

void ErrorAccumulator::add(double rel_error) noexcept {
  ++n_;
  const double delta = rel_error - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (rel_error - mean_);
  abs_sum_ += std::fabs(rel_error);
  min_ = std::min(min_, rel_error);
  max_ = std::max(max_, rel_error);
}

void ErrorAccumulator::add_pair(double approx, double exact) noexcept {
  if (exact == 0.0) return;
  add((approx - exact) / exact);
}

ErrorAccumulator ErrorAccumulator::from_moments(std::uint64_t n, double mean,
                                                double m2, double abs_sum,
                                                double min, double max) noexcept {
  ErrorAccumulator acc;
  if (n == 0) return acc;
  acc.n_ = n;
  acc.mean_ = mean;
  acc.m2_ = m2 < 0.0 ? 0.0 : m2;  // guard tiny negative round-off
  acc.abs_sum_ = abs_sum;
  acc.min_ = min;
  acc.max_ = max;
  return acc;
}

void ErrorAccumulator::merge(const ErrorAccumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  abs_sum_ += other.abs_sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

ErrorMetrics ErrorAccumulator::metrics() const noexcept {
  ErrorMetrics m;
  m.samples = n_;
  if (n_ == 0) return m;
  const auto n = static_cast<double>(n_);
  m.bias = 100.0 * mean_;
  m.mean = 100.0 * abs_sum_ / n;
  // Table I reports variance of relative error *in percent units*, i.e.
  // var(100·e) / 100 ... the paper's values (e.g. 0.28 for REALM16) match
  // var(e·100) treating e in percent: Var[%²] = 1e4 · m2 / n.
  m.variance = 1e4 * m2_ / n;
  m.min = 100.0 * min_;
  m.max = 100.0 * max_;
  return m;
}

}  // namespace realm::err
