#include "realm/error/histogram.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace realm::err {

Histogram::Histogram(double lo, double hi, int bins) : lo_{lo}, hi_{hi}, width_{0} {
  if (!(hi > lo) || bins < 1) throw std::invalid_argument("Histogram: bad range/bins");
  counts_.assign(static_cast<std::size_t>(bins), 0);
  width_ = (hi - lo) / bins;
}

void Histogram::add(double v) noexcept {
  ++total_;
  if (v < lo_) {
    ++underflow_;
    return;
  }
  if (v >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((v - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge guard
  ++counts_[idx];
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ || other.counts_.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::merge: mismatched range or bins");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

std::uint64_t Histogram::count(int bin) const {
  return counts_.at(static_cast<std::size_t>(bin));
}

double Histogram::center(int bin) const {
  if (bin < 0 || bin >= bins()) throw std::out_of_range("Histogram::center");
  return lo_ + (bin + 0.5) * width_;
}

double Histogram::density(int bin) const {
  const std::uint64_t c = count(bin);
  return total_ == 0 ? 0.0 : static_cast<double>(c) / static_cast<double>(total_);
}

std::string Histogram::to_csv() const {
  std::ostringstream os;
  os << "center,count,density\n";
  for (int i = 0; i < bins(); ++i) {
    os << center(i) << ',' << count(i) << ',' << density(i) << '\n';
  }
  return os.str();
}

}  // namespace realm::err
