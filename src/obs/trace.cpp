#include "realm/obs/trace.hpp"

#include "realm/obs/sampler.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace realm::obs {

namespace {

bool env_tracing_on() noexcept {
  const char* v = std::getenv("REALM_TRACE");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

// Trace epoch: captured during static initialization so every thread's
// timestamps share one zero point that precedes all spans.
const std::chrono::steady_clock::time_point g_epoch = std::chrono::steady_clock::now();

/// Spans retained per thread.  24 B/slot -> 768 KiB per recording thread;
/// at ~1 us/span that is tens of milliseconds of dense history, and coarser
/// (shard/block-level) spans cover whole --full runs without wrapping.
constexpr std::size_t kRingCapacity = std::size_t{1} << 15;

// One slot of a ring.  Fields are relaxed atomics so an exporter racing a
// wrapping producer reads values, not torn bytes (a mixed-up slot is
// cosmetic; a data race would be UB).  The producer publishes via the ring
// head, not per-slot flags.
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
  std::atomic<std::uint64_t> rid{0};  // request id; 0 = no request context
};

/// Distinct span names one thread can histogram.  The whole library uses
/// ~30 literals today; a thread that somehow exceeds the table keeps
/// recording ring spans but stops gaining new histogram rows.
constexpr std::size_t kMaxSpanNames = 64;

// One per-thread histogram row.  `name` is written once by the owning
// thread (published via the table's size counter); the histogram itself is
// relaxed-atomic so the exporter can merge mid-run without tearing.
struct HistEntry {
  std::atomic<const char*> name{nullptr};
  AtomicHistogram hist;
};

struct ThreadBuffer {
  std::uint32_t tid = 0;                  // dense export id, assigned at registration
  std::atomic<std::uint64_t> head{0};     // total spans ever recorded here
  std::vector<Slot> ring{kRingCapacity};
  // Append-only name -> duration-histogram table; only the owning thread
  // appends, exporters read up to hist_count (acquire).
  std::array<HistEntry, kMaxSpanNames> hists;
  std::atomic<std::size_t> hist_count{0};

  AtomicHistogram* hist_for(const char* name) {
    const std::size_t n = hist_count.load(std::memory_order_relaxed);
    // Fast path: literal pointers are stable, so pointer equality almost
    // always hits; the strcmp pass catches the same literal from another TU.
    for (std::size_t i = 0; i < n; ++i) {
      if (hists[i].name.load(std::memory_order_relaxed) == name) return &hists[i].hist;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (std::strcmp(hists[i].name.load(std::memory_order_relaxed), name) == 0) {
        return &hists[i].hist;
      }
    }
    if (n >= kMaxSpanNames) return nullptr;
    hists[n].name.store(name, std::memory_order_relaxed);
    hist_count.store(n + 1, std::memory_order_release);
    return &hists[n].hist;
  }
};

struct Registry {
  std::mutex m;
  // shared_ptr keeps rings of exited threads alive until process end, so a
  // worker's spans are still exportable after the pool shuts down.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: exporters may run at exit
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> tb = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& r = registry();
    std::lock_guard lock{r.m};
    b->tid = static_cast<std::uint32_t>(r.buffers.size());
    r.buffers.push_back(b);
    return b;
  }();
  return *tb;
}

std::vector<std::shared_ptr<ThreadBuffer>> buffer_snapshot() {
  Registry& r = registry();
  std::lock_guard lock{r.m};
  return r.buffers;
}

struct ExportEvent {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::uint32_t tid;
  std::uint64_t rid;
};

// Every span still resident in some ring, in (tid, slot) order.
std::vector<ExportEvent> collect_events() {
  std::vector<ExportEvent> out;
  for (const auto& b : buffer_snapshot()) {
    const std::uint64_t head = b->head.load(std::memory_order_acquire);
    const std::uint64_t n = head < kRingCapacity ? head : kRingCapacity;
    out.reserve(out.size() + static_cast<std::size_t>(n));
    for (std::uint64_t k = head - n; k < head; ++k) {
      const Slot& s = b->ring[static_cast<std::size_t>(k % kRingCapacity)];
      const char* name = s.name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;  // slot zeroed by a concurrent reset
      out.push_back({name, s.start_ns.load(std::memory_order_relaxed),
                     s.dur_ns.load(std::memory_order_relaxed), b->tid,
                     s.rid.load(std::memory_order_relaxed)});
    }
  }
  return out;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

}  // namespace

namespace detail {

std::atomic<bool> g_trace_enabled{env_tracing_on()};
thread_local std::uint64_t g_trace_rid = 0;

void record_span(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns) {
  ThreadBuffer& b = local_buffer();
  if (AtomicHistogram* hist = b.hist_for(name)) hist->record(dur_ns);
  const std::uint64_t h = b.head.load(std::memory_order_relaxed);
  Slot& s = b.ring[static_cast<std::size_t>(h % kRingCapacity)];
  s.name.store(name, std::memory_order_relaxed);
  s.start_ns.store(start_ns, std::memory_order_relaxed);
  s.dur_ns.store(dur_ns, std::memory_order_relaxed);
  s.rid.store(g_trace_rid, std::memory_order_relaxed);
  b.head.store(h + 1, std::memory_order_release);
}

}  // namespace detail

void set_tracing(bool on) noexcept {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - g_epoch)
          .count());
}

const char* trace_env_path() noexcept {
  const char* v = std::getenv("REALM_TRACE");
  if (v == nullptr || v[0] == '\0') return nullptr;
  if (std::strcmp(v, "0") == 0 || std::strcmp(v, "1") == 0) return nullptr;
  return v;
}

std::size_t trace_events_recorded() {
  std::size_t total = 0;
  for (const auto& b : buffer_snapshot()) {
    total += static_cast<std::size_t>(b->head.load(std::memory_order_acquire));
  }
  return total;
}

std::size_t trace_events_dropped() {
  std::size_t dropped = 0;
  for (const auto& b : buffer_snapshot()) {
    const std::uint64_t head = b->head.load(std::memory_order_acquire);
    if (head > kRingCapacity) dropped += static_cast<std::size_t>(head - kRingCapacity);
  }
  return dropped;
}

std::map<std::string, SpanAggregate> span_aggregates() {
  std::map<std::string, SpanAggregate> agg;
  for (const ExportEvent& e : collect_events()) {
    SpanAggregate& a = agg[e.name];
    ++a.count;
    a.total_ns += e.dur_ns;
    if (e.dur_ns < a.min_ns) a.min_ns = e.dur_ns;
    if (e.dur_ns > a.max_ns) a.max_ns = e.dur_ns;
  }
  return agg;
}

std::map<std::string, HistogramSnapshot> span_histograms() {
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& b : buffer_snapshot()) {
    const std::size_t n = b->hist_count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const char* name = b->hists[i].name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;  // cleared by a concurrent reset
      out[name].merge(b->hists[i].hist.snapshot());
    }
  }
  return out;
}

std::string chrome_trace_json() {
  const std::vector<ExportEvent> events = collect_events();
  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  // Thread-name metadata rows so Perfetto labels the tracks.
  std::vector<std::uint32_t> tids;
  for (const auto& b : buffer_snapshot()) tids.push_back(b->tid);
  bool first = true;
  for (const std::uint32_t tid : tids) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":\"realm-";
    out += tid == 0 ? "main" : "worker-" + std::to_string(tid);
    out += "\"}}";
  }

  for (const ExportEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += e.name;  // span names are identifier-style literals, no escaping
    out += "\",\"cat\":\"realm\",\"ph\":\"X\",\"ts\":";
    append_double(out, static_cast<double>(e.start_ns) / 1000.0);
    out += ",\"dur\":";
    append_double(out, static_cast<double>(e.dur_ns) / 1000.0);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    if (e.rid != 0) {
      // Request lane: Perfetto's "args.rid" query/filter groups every span
      // of one served request across loop, executor and pool threads.
      out += ",\"args\":{\"rid\":";
      out += std::to_string(e.rid);
      out += '}';
    }
    out += '}';
  }

  // Sampler timeline as counter ("C" phase) tracks: Perfetto renders pool
  // occupancy and RSS as area charts below the span rows.  Empty when the
  // sampler never ran.
  for (const TimelineSample& s : timeline_samples()) {
    const auto counter_event = [&](const char* name, const char* arg,
                                   std::uint64_t value) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      out += name;
      out += "\",\"cat\":\"realm\",\"ph\":\"C\",\"ts\":";
      append_double(out, static_cast<double>(s.t_ns) / 1000.0);
      out += ",\"pid\":1,\"args\":{\"";
      out += arg;
      out += "\":";
      out += std::to_string(value);
      out += "}}";
    };
    counter_event("pool_active_workers", "active", s.pool_active);
    counter_event("pool_queue_depth", "depth", s.pool_queue_depth);
    counter_event("rss_kb", "kb", s.rss_kb);
  }
  out += "]}";
  return out;
}

void write_chrome_trace(const std::string& path) {
  const std::filesystem::path p{path};
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os{p};
  if (!os) throw std::runtime_error("write_chrome_trace: cannot open " + path);
  os << chrome_trace_json();
  if (!os) throw std::runtime_error("write_chrome_trace: write failed for " + path);
}

void trace_reset() {
  for (const auto& b : buffer_snapshot()) {
    for (Slot& s : b->ring) s.name.store(nullptr, std::memory_order_relaxed);
    b->head.store(0, std::memory_order_release);
    const std::size_t n = b->hist_count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      b->hists[i].hist.reset();
      b->hists[i].name.store(nullptr, std::memory_order_relaxed);
    }
    b->hist_count.store(0, std::memory_order_release);
  }
}

}  // namespace realm::obs
