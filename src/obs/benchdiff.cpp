#include "realm/obs/benchdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace realm::obs::benchdiff {

namespace {

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Numeric-value keys all live under these prefixes; stamp lines (bench=,
/// utc=, ...) are everything else.
bool is_value_key(const std::string& key) {
  return key.rfind("metric.", 0) == 0 || key.rfind("counter.", 0) == 0 ||
         key.rfind("span.", 0) == 0 || key.rfind("vhist.", 0) == 0;
}

/// Percentile columns are log2-bucket estimates: a sample sitting near a
/// bucket edge flaps the reported value by a whole bucket (~2x) between
/// otherwise identical runs.  Gating them at the plain relative tolerance
/// would be permanently flaky, so diff() widens their threshold to one full
/// bucket plus the tolerance.
bool is_bucket_quantized(const std::string& key) {
  for (const char* suffix : {".p50_us", ".p95_us", ".p99_us", ".p50", ".p95", ".p99"}) {
    if (ends_with(key, suffix)) return true;
  }
  return false;
}

}  // namespace

Record parse_record(const std::string& text) {
  Record r;
  std::string schema;
  std::istringstream in{text};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    // Metric names may contain '='; values (hex-floats, decimals, stamps)
    // never do — split on the last '='.
    const std::size_t eq = line.rfind('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::runtime_error("history record line " + std::to_string(lineno) +
                               " is not name=value: '" + line + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (is_value_key(key)) {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        throw std::runtime_error("history record line " + std::to_string(lineno) +
                                 ": malformed number '" + value + "' for " + key);
      }
      r.values[key] = v;
    } else if (key == "schema") {
      schema = value;
    } else if (key == "bench") {
      r.bench = value;
    } else if (key == "commit") {
      r.commit = value;
    } else if (key == "host") {
      r.host = value;
    } else if (key == "utc") {
      r.utc = value;
    }
    // Unknown stamp keys (hw_threads, future additions) are ignored: the
    // record format may grow without breaking old benchdiff binaries.
  }
  if (schema != "realm-history-v1") {
    throw std::runtime_error("history record has schema '" + schema +
                             "', expected 'realm-history-v1'");
  }
  if (r.bench.empty()) throw std::runtime_error("history record has no bench stamp");
  return r;
}

Record load_record(const std::string& path) {
  std::ifstream is{path};
  if (!is) throw std::runtime_error("cannot open history record " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    return parse_record(buf.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

Direction classify(const std::string& key) {
  if (key.rfind("counter.", 0) == 0 || key.rfind("vhist.", 0) == 0) {
    return Direction::kInformational;
  }
  if (key.rfind("span.", 0) == 0) {
    // Span durations: smaller is faster.  The count column is workload
    // shape, not speed.
    return ends_with(key, ".count") ? Direction::kInformational
                                    : Direction::kLowerIsBetter;
  }
  if (key.rfind("metric.", 0) == 0) {
    if (contains(key, "speedup") || contains(key, "_sps") ||
        contains(key, "_per_s") || contains(key, "per_sec") ||
        contains(key, "mpix") || contains(key, "psnr") || contains(key, "_acc")) {
      return Direction::kHigherIsBetter;
    }
    if (ends_with(key, "_ns") || ends_with(key, "_us") || ends_with(key, "_ms") ||
        ends_with(key, "_s") || ends_with(key, "_seconds") ||
        contains(key, "latency") || contains(key, "wait") || contains(key, "time")) {
      return Direction::kLowerIsBetter;
    }
  }
  return Direction::kInformational;
}

std::vector<const Delta*> DiffReport::regressions() const {
  std::vector<const Delta*> out;
  for (const Delta& d : deltas) {
    if (d.regression) out.push_back(&d);
  }
  return out;
}

DiffReport diff(const Record& baseline, const Record& current,
                const Tolerances& tol) {
  DiffReport report;
  std::set<std::string> keys;
  for (const auto& [k, v] : baseline.values) keys.insert(k);
  for (const auto& [k, v] : current.values) keys.insert(k);

  for (const std::string& key : keys) {
    Delta d;
    d.key = key;
    d.direction = classify(key);
    const bool directional = d.direction != Direction::kInformational;
    const auto b = baseline.values.find(key);
    const auto c = current.values.find(key);

    if (b == baseline.values.end()) {
      // New key: nothing to regress against, record for visibility.
      d.current = c->second;
      d.note = "new key (not in baseline)";
      report.deltas.push_back(d);
      continue;
    }
    d.baseline = b->second;
    if (c == current.values.end()) {
      d.note = "missing from current run";
      d.regression = directional;  // a tracked perf metric vanished
      report.deltas.push_back(d);
      report.regressed |= d.regression;
      continue;
    }
    d.current = c->second;
    if (std::isnan(d.baseline) || std::isnan(d.current)) {
      d.note = "NaN value";
      d.regression = directional;  // cannot prove no regression
      report.deltas.push_back(d);
      report.regressed |= d.regression;
      continue;
    }
    if (d.baseline != 0.0) {
      d.rel_change = (d.current - d.baseline) / std::fabs(d.baseline);
    }
    if (directional) {
      const double t = tol.for_key(key);
      if (d.direction == Direction::kLowerIsBetter) {
        // Bucket-quantized keys get one bucket of slack: regression means
        // current > 2*(1+t)*baseline, i.e. the move cannot be explained by
        // edge flap alone.  For exact keys the plain tolerance applies.
        const double limit = is_bucket_quantized(key) ? 2.0 * (1.0 + t) - 1.0 : t;
        // baseline 0 means "was instantaneous": any measurable time is an
        // infinite relative slowdown, but sub-tolerance absolute noise on a
        // zero baseline is meaningless — only flag a clearly nonzero move.
        d.regression = d.baseline == 0.0 ? d.current > 0.0 : d.rel_change > limit;
      } else {
        d.regression = d.baseline != 0.0 && d.rel_change < -t;
      }
    }
    report.deltas.push_back(d);
    report.regressed |= d.regression;
  }
  return report;
}

Record median_record(const std::vector<Record>& history) {
  if (history.empty()) throw std::runtime_error("median_record: empty history");
  Record out;
  // Stamp from the newest record (lexicographic utc == chronological for
  // ISO-8601), so reports name the latest baseline conditions.
  const Record* newest = &history.front();
  for (const Record& r : history) {
    if (r.utc > newest->utc) newest = &r;
  }
  out.bench = newest->bench;
  out.commit = newest->commit;
  out.host = newest->host;
  out.utc = newest->utc;

  std::set<std::string> keys;
  for (const Record& r : history) {
    for (const auto& [k, v] : r.values) keys.insert(k);
  }
  for (const std::string& key : keys) {
    std::vector<double> vals;
    for (const Record& r : history) {
      const auto it = r.values.find(key);
      if (it != r.values.end() && !std::isnan(it->second)) vals.push_back(it->second);
    }
    if (vals.empty()) continue;  // only NaNs: leave the key out entirely
    std::sort(vals.begin(), vals.end());
    out.values[key] = vals[(vals.size() - 1) / 2];
  }
  return out;
}

}  // namespace realm::obs::benchdiff
