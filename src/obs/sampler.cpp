#include "realm/obs/sampler.hpp"

#include <cstdio>
#include <cstdlib>
#include <condition_variable>
#include <chrono>
#include <mutex>
#include <thread>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "realm/obs/trace.hpp"

namespace realm::obs {

namespace {

constexpr std::size_t kTimelineCap = std::size_t{1} << 16;

struct SamplerState {
  std::mutex m;
  std::condition_variable cv;
  std::thread thread;
  bool running = false;
  bool stop_requested = false;
  std::chrono::nanoseconds period{0};

  std::vector<TimelineSample> timeline;
  std::size_t dropped = 0;
  std::array<std::uint64_t, kCounterCount> last_counters{};
};

SamplerState& state() {
  static SamplerState* s = new SamplerState;  // leaked: exporters run at exit
  return *s;
}

}  // namespace

// Resident set size from /proc/self/statm (field 2, in pages).  Returns 0 on
// platforms without procfs — the timeline column is then uniformly zero.
std::uint64_t read_rss_kb() noexcept {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long vm_pages = 0;
  unsigned long long rss_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return rss_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096) / 1024;
#else
  return 0;
#endif
}

namespace {

// Captures one sample; caller holds state().m (the timeline and the
// last-counters baseline are sampler-thread + control-thread shared).
void capture_locked(SamplerState& s) {
  if (s.timeline.size() >= kTimelineCap) {
    ++s.dropped;
    return;
  }
  TimelineSample sample;
  sample.t_ns = now_ns();
  sample.rss_kb = read_rss_kb();
  sample.pool_workers = gauge_value(Gauge::kPoolWorkers);
  sample.pool_active = gauge_value(Gauge::kPoolActiveWorkers);
  sample.pool_queue_depth = gauge_value(Gauge::kPoolQueueDepth);
  for (unsigned c = 0; c < kCounterCount; ++c) {
    const std::uint64_t v = counter_value(static_cast<Counter>(c));
    // Deltas saturate at 0 so a counters_reset() mid-run (tests) cannot
    // produce wrapped garbage.
    sample.counter_delta[c] = v >= s.last_counters[c] ? v - s.last_counters[c] : 0;
    s.last_counters[c] = v;
  }
  s.timeline.push_back(sample);
}

void sampler_loop() {
  SamplerState& s = state();
  std::unique_lock lock{s.m};
  while (!s.stop_requested) {
    s.cv.wait_for(lock, s.period, [&] { return s.stop_requested; });
    capture_locked(s);  // the final wakeup also captures: stop() flushes
  }
}

}  // namespace

void Sampler::start(double hz) {
  SamplerState& s = state();
  std::lock_guard lock{s.m};
  if (s.running) return;
  if (hz < 1.0) hz = 1.0;
  if (hz > 1000.0) hz = 1000.0;
  s.period = std::chrono::nanoseconds{static_cast<std::uint64_t>(1e9 / hz)};
  s.stop_requested = false;
  for (unsigned c = 0; c < kCounterCount; ++c) {
    s.last_counters[c] = counter_value(static_cast<Counter>(c));
  }
  s.thread = std::thread{sampler_loop};
  s.running = true;
}

void Sampler::stop() {
  SamplerState& s = state();
  std::thread t;
  {
    std::lock_guard lock{s.m};
    if (!s.running) return;
    s.stop_requested = true;
    t = std::move(s.thread);
  }
  s.cv.notify_all();
  t.join();
  std::lock_guard lock{s.m};
  s.running = false;
}

bool Sampler::running() noexcept {
  SamplerState& s = state();
  std::lock_guard lock{s.m};
  return s.running;
}

double sampler_env_hz() noexcept {
  const char* v = std::getenv("REALM_SAMPLE_HZ");
  if (v == nullptr || v[0] == '\0') return 0.0;
  char* end = nullptr;
  const double hz = std::strtod(v, &end);
  if (end == nullptr || *end != '\0' || !(hz > 0.0)) return 0.0;
  return hz;
}

std::vector<TimelineSample> timeline_samples() {
  SamplerState& s = state();
  std::lock_guard lock{s.m};
  return s.timeline;
}

std::size_t timeline_samples_dropped() {
  SamplerState& s = state();
  std::lock_guard lock{s.m};
  return s.dropped;
}

void timeline_reset() {
  SamplerState& s = state();
  std::lock_guard lock{s.m};
  s.timeline.clear();
  s.dropped = 0;
}

}  // namespace realm::obs
