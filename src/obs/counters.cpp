#include "realm/obs/counters.hpp"

namespace realm::obs {

namespace detail {

PaddedAtomic g_counters[kCounterCount];
PaddedAtomic g_gauges[kGaugeCount];

}  // namespace detail

void counters_reset() noexcept {
  for (auto& c : detail::g_counters) c.v.store(0, std::memory_order_relaxed);
}

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kMcSamples: return "mc_samples";
    case Counter::kMcShards: return "mc_shards";
    case Counter::kLutCacheHits: return "lut_cache_hits";
    case Counter::kLutCacheMisses: return "lut_cache_misses";
    case Counter::kGateEvals: return "gate_evals";
    case Counter::kPackedBlocks: return "packed_blocks";
    case Counter::kEquivPairs: return "equiv_pairs";
    case Counter::kFaultSitesDropped: return "fault_sites_dropped";
    case Counter::kPoolRegions: return "pool_regions";
    case Counter::kPoolTasksExecuted: return "pool_tasks_executed";
    case Counter::kPoolTasksInline: return "pool_tasks_inline";
    case Counter::kPoolTasksFailed: return "pool_tasks_failed";
    case Counter::kPoolQueueWaitNs: return "pool_queue_wait_ns";
    case Counter::kJpegBlocksEncoded: return "jpeg_blocks_encoded";
    case Counter::kJpegBlocksDecoded: return "jpeg_blocks_decoded";
    case Counter::kStoreHits: return "store_hits";
    case Counter::kStoreMisses: return "store_misses";
    case Counter::kStoreBytesRead: return "store_bytes_read";
    case Counter::kStoreBytesWritten: return "store_bytes_written";
    case Counter::kCampaignUnitsResumed: return "campaign_units_resumed";
    case Counter::kCampaignUnitsComputed: return "campaign_units_computed";
    case Counter::kSweepPoints: return "sweep_points";
    case Counter::kExhaustiveRows: return "exhaustive_rows";
    case Counter::kExhaustiveTiles: return "exhaustive_tiles";
    case Counter::kRowFallbackBatches: return "row_fallback_batches";
    case Counter::kDctBlocksBatched: return "dct_blocks_batched";
    case Counter::kNnMacsBatched: return "nn_macs_batched";
    case Counter::kDspTapsBatched: return "dsp_taps_batched";
    case Counter::kNetAccepts: return "net_accepts";
    case Counter::kNetRequests: return "net_requests";
    case Counter::kNetBytesIn: return "net_bytes_in";
    case Counter::kNetBytesOut: return "net_bytes_out";
    case Counter::kNetFrameErrors: return "net_frame_errors";
    case Counter::kNetBackpressureStalls: return "net_backpressure_stalls";
    case Counter::kNetDrained: return "net_drained";
    case Counter::kNetClientTimeouts: return "net_client_timeouts";
    case Counter::kSloRecords: return "slo_records";
    case Counter::kSloRotations: return "slo_rotations";
    case Counter::kCount: break;
  }
  return "unknown";
}

const char* gauge_name(Gauge g) noexcept {
  switch (g) {
    case Gauge::kPoolWorkers: return "pool_workers";
    case Gauge::kPoolActiveWorkers: return "pool_active_workers";
    case Gauge::kPoolQueueDepth: return "pool_queue_depth";
    case Gauge::kCount: break;
  }
  return "unknown";
}

}  // namespace realm::obs
