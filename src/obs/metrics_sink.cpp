#include "realm/obs/metrics_sink.hpp"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#if defined(__linux__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "realm/obs/counters.hpp"
#include "realm/obs/histogram.hpp"
#include "realm/obs/sampler.hpp"
#include "realm/obs/trace.hpp"

namespace realm::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  // %.17g round-trips doubles; trim to a clean token (no trailing garbage).
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string s{buf};
  // JSON has no inf/nan tokens; clamp to null (consumers treat as missing).
  if (s.find("inf") != std::string::npos || s.find("nan") != std::string::npos) {
    return "null";
  }
  return s;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

void append_entries(std::string& out, const char* section,
                    const std::vector<std::pair<std::string, JsonValue>>& entries) {
  out += "  ";
  out += json_quote(section);
  out += ": {";
  bool first = true;
  for (const auto& [key, value] : entries) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    out += json_quote(key);
    out += ": ";
    out += value.render();
  }
  out += entries.empty() ? "}" : "\n  }";
}

// One histogram rendered as a JSON object.  Durations scale ns -> us via
// `scale` (1.0 for byte-valued histograms); buckets stay raw counts.
void append_histogram(std::string& out, const HistogramSnapshot& h, double scale,
                      const char* unit_suffix) {
  const auto scaled = [&](std::uint64_t v) {
    return format_double(static_cast<double>(v) / scale);
  };
  out += "{\"count\": " + std::to_string(h.count);
  out += ", \"total" + std::string{unit_suffix} + "\": " + scaled(h.total);
  out += ", \"mean" + std::string{unit_suffix} + "\": " +
         format_double(h.count == 0 ? 0.0
                                    : static_cast<double>(h.total) / scale /
                                          static_cast<double>(h.count));
  out += ", \"min" + std::string{unit_suffix} + "\": " +
         scaled(h.count == 0 ? 0 : h.min);
  out += ", \"max" + std::string{unit_suffix} + "\": " + scaled(h.max);
  out += ", \"p50" + std::string{unit_suffix} + "\": " + scaled(h.percentile(0.50));
  out += ", \"p95" + std::string{unit_suffix} + "\": " + scaled(h.percentile(0.95));
  out += ", \"p99" + std::string{unit_suffix} + "\": " + scaled(h.percentile(0.99));
  out += ", \"buckets\": [";
  for (unsigned i = 0; i < kHistogramBuckets; ++i) {
    if (i != 0) out += ',';
    out += std::to_string(h.buckets[i]);
  }
  out += "]}";
}

}  // namespace

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

std::string run_host() {
#if defined(__linux__) || defined(__APPLE__)
  char buf[256] = {};
  if (::gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

std::string run_commit() {
  if (const char* v = std::getenv("REALM_GIT_COMMIT"); v != nullptr && v[0] != '\0') {
    return v;
  }
  if (const char* v = std::getenv("GITHUB_SHA"); v != nullptr && v[0] != '\0') {
    return v;
  }
  return "unknown";
}

std::string JsonValue::render() const {
  switch (kind_) {
    case Kind::kString: return json_quote(str_);
    case Kind::kDouble: return format_double(num_);
    case Kind::kInt: return std::to_string(i_);
    case Kind::kUInt: return std::to_string(u_);
    case Kind::kBool: return b_ ? "true" : "false";
  }
  return "null";
}

double JsonValue::as_double() const noexcept {
  switch (kind_) {
    case Kind::kDouble: return num_;
    case Kind::kInt: return static_cast<double>(i_);
    case Kind::kUInt: return static_cast<double>(u_);
    case Kind::kString:
    case Kind::kBool: break;
  }
  return 0.0;
}

MetricsSink::MetricsSink(std::string bench) : bench_{std::move(bench)} {}

void MetricsSink::meta(const std::string& key, JsonValue value) {
  meta_.emplace_back(key, std::move(value));
}

void MetricsSink::metric(const std::string& key, JsonValue value) {
  metrics_.emplace_back(key, std::move(value));
}

std::string MetricsSink::to_json() const {
  std::vector<std::pair<std::string, JsonValue>> meta;
  meta.reserve(meta_.size() + 2);
  meta.emplace_back("bench", bench_);
  meta.emplace_back("generated_utc", utc_timestamp());
  for (const auto& e : meta_) meta.push_back(e);

  std::vector<std::pair<std::string, JsonValue>> run;
  run.emplace_back("host", run_host());
  run.emplace_back("commit", run_commit());
  run.emplace_back("hw_threads", std::thread::hardware_concurrency());

  std::vector<std::pair<std::string, JsonValue>> counters;
  counters.reserve(kCounterCount);
  for (unsigned c = 0; c < kCounterCount; ++c) {
    counters.emplace_back(counter_name(static_cast<Counter>(c)),
                          counter_value(static_cast<Counter>(c)));
  }
  std::vector<std::pair<std::string, JsonValue>> gauges;
  gauges.reserve(kGaugeCount);
  for (unsigned g = 0; g < kGaugeCount; ++g) {
    gauges.emplace_back(gauge_name(static_cast<Gauge>(g)),
                        gauge_value(static_cast<Gauge>(g)));
  }

  std::string out;
  out += "{\n  \"schema\": \"realm-bench-v3\",\n";
  append_entries(out, "meta", meta);
  out += ",\n";
  append_entries(out, "run", run);
  out += ",\n";
  append_entries(out, "metrics", metrics_);
  out += ",\n";
  append_entries(out, "counters", counters);
  out += ",\n";
  append_entries(out, "gauges", gauges);

  out += ",\n  \"spans\": {";
  bool first = true;
  for (const auto& [name, hist] : span_histograms()) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    out += json_quote(name);
    out += ": ";
    append_histogram(out, hist, 1e3, "_us");
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"value_histograms\": {";
  first = true;
  for (unsigned h = 0; h < kValueHistCount; ++h) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    out += json_quote(value_hist_name(static_cast<ValueHist>(h)));
    out += ": ";
    append_histogram(out, value_hist_snapshot(static_cast<ValueHist>(h)), 1.0, "");
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"timeline\": [";
  first = true;
  for (const TimelineSample& s : timeline_samples()) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"t_us\": " + format_double(static_cast<double>(s.t_ns) / 1e3);
    out += ", \"rss_kb\": " + std::to_string(s.rss_kb);
    out += ", \"pool_workers\": " + std::to_string(s.pool_workers);
    out += ", \"pool_active\": " + std::to_string(s.pool_active);
    out += ", \"pool_queue_depth\": " + std::to_string(s.pool_queue_depth);
    // Only counters that moved this interval: a dense 28-column row per
    // sample would dwarf the rest of the document at high sample rates.
    out += ", \"counters\": {";
    bool cfirst = true;
    for (unsigned c = 0; c < kCounterCount; ++c) {
      if (s.counter_delta[c] == 0) continue;
      if (!cfirst) out += ", ";
      cfirst = false;
      out += json_quote(counter_name(static_cast<Counter>(c)));
      out += ": " + std::to_string(s.counter_delta[c]);
    }
    out += "}}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string MetricsSink::history_record() const {
  std::string out;
  const auto line = [&](const std::string& key, const std::string& value) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  };
  const auto hex_double = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    return std::string{buf};
  };

  line("schema", "realm-history-v1");
  line("bench", bench_);
  line("utc", utc_timestamp());
  line("commit", run_commit());
  line("host", run_host());
  line("hw_threads", std::to_string(std::thread::hardware_concurrency()));
  line("pool_workers", std::to_string(gauge_value(Gauge::kPoolWorkers)));

  for (const auto& [key, value] : metrics_) {
    if (!value.is_numeric()) continue;  // strings/bools cannot regress numerically
    line("metric." + key, hex_double(value.as_double()));
  }
  for (unsigned c = 0; c < kCounterCount; ++c) {
    line(std::string{"counter."} + counter_name(static_cast<Counter>(c)),
         std::to_string(counter_value(static_cast<Counter>(c))));
  }
  for (const auto& [name, hist] : span_histograms()) {
    const std::string prefix = "span." + name + ".";
    line(prefix + "count", std::to_string(hist.count));
    line(prefix + "total_us", hex_double(static_cast<double>(hist.total) / 1e3));
    line(prefix + "p50_us", hex_double(static_cast<double>(hist.percentile(0.50)) / 1e3));
    line(prefix + "p95_us", hex_double(static_cast<double>(hist.percentile(0.95)) / 1e3));
    line(prefix + "p99_us", hex_double(static_cast<double>(hist.percentile(0.99)) / 1e3));
  }
  for (unsigned h = 0; h < kValueHistCount; ++h) {
    const auto s = value_hist_snapshot(static_cast<ValueHist>(h));
    const std::string prefix =
        std::string{"vhist."} + value_hist_name(static_cast<ValueHist>(h)) + ".";
    line(prefix + "count", std::to_string(s.count));
    line(prefix + "total", std::to_string(s.total));
    line(prefix + "p95", std::to_string(s.percentile(0.95)));
  }
  return out;
}

void MetricsSink::write(const std::string& path) const {
  const std::filesystem::path p{path};
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os{p};
  if (!os) throw std::runtime_error("MetricsSink::write: cannot open " + path);
  os << to_json();
  if (!os) throw std::runtime_error("MetricsSink::write: write failed for " + path);
}

}  // namespace realm::obs
