#include "realm/obs/metrics_sink.hpp"

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "realm/obs/counters.hpp"
#include "realm/obs/trace.hpp"

namespace realm::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  // %.17g round-trips doubles; trim to a clean token (no trailing garbage).
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string s{buf};
  // JSON has no inf/nan tokens; clamp to null (consumers treat as missing).
  if (s.find("inf") != std::string::npos || s.find("nan") != std::string::npos) {
    return "null";
  }
  return s;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

void append_entries(std::string& out, const char* section,
                    const std::vector<std::pair<std::string, JsonValue>>& entries) {
  out += "  ";
  out += json_quote(section);
  out += ": {";
  bool first = true;
  for (const auto& [key, value] : entries) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    out += json_quote(key);
    out += ": ";
    out += value.render();
  }
  out += entries.empty() ? "}" : "\n  }";
}

}  // namespace

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonValue::render() const {
  switch (kind_) {
    case Kind::kString: return json_quote(str_);
    case Kind::kDouble: return format_double(num_);
    case Kind::kInt: return std::to_string(i_);
    case Kind::kUInt: return std::to_string(u_);
    case Kind::kBool: return b_ ? "true" : "false";
  }
  return "null";
}

MetricsSink::MetricsSink(std::string bench) : bench_{std::move(bench)} {}

void MetricsSink::meta(const std::string& key, JsonValue value) {
  meta_.emplace_back(key, std::move(value));
}

void MetricsSink::metric(const std::string& key, JsonValue value) {
  metrics_.emplace_back(key, std::move(value));
}

std::string MetricsSink::to_json() const {
  std::vector<std::pair<std::string, JsonValue>> meta;
  meta.reserve(meta_.size() + 2);
  meta.emplace_back("bench", bench_);
  meta.emplace_back("generated_utc", utc_timestamp());
  for (const auto& e : meta_) meta.push_back(e);

  std::vector<std::pair<std::string, JsonValue>> counters;
  counters.reserve(kCounterCount);
  for (unsigned c = 0; c < kCounterCount; ++c) {
    counters.emplace_back(counter_name(static_cast<Counter>(c)),
                          counter_value(static_cast<Counter>(c)));
  }
  std::vector<std::pair<std::string, JsonValue>> gauges;
  gauges.reserve(kGaugeCount);
  for (unsigned g = 0; g < kGaugeCount; ++g) {
    gauges.emplace_back(gauge_name(static_cast<Gauge>(g)),
                        gauge_value(static_cast<Gauge>(g)));
  }

  std::string out;
  out += "{\n  \"schema\": \"realm-bench-v2\",\n";
  append_entries(out, "meta", meta);
  out += ",\n";
  append_entries(out, "metrics", metrics_);
  out += ",\n";
  append_entries(out, "counters", counters);
  out += ",\n";
  append_entries(out, "gauges", gauges);
  out += ",\n  \"spans\": {";
  bool first = true;
  for (const auto& [name, agg] : span_aggregates()) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    out += json_quote(name);
    out += ": {\"count\": " + std::to_string(agg.count);
    out += ", \"total_us\": " + format_double(static_cast<double>(agg.total_ns) / 1e3);
    out += ", \"mean_us\": " +
           format_double(agg.count == 0
                             ? 0.0
                             : static_cast<double>(agg.total_ns) / 1e3 /
                                   static_cast<double>(agg.count));
    out += ", \"min_us\": " + format_double(static_cast<double>(agg.min_ns) / 1e3);
    out += ", \"max_us\": " + format_double(static_cast<double>(agg.max_ns) / 1e3);
    out += '}';
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsSink::write(const std::string& path) const {
  const std::filesystem::path p{path};
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os{p};
  if (!os) throw std::runtime_error("MetricsSink::write: cannot open " + path);
  os << to_json();
  if (!os) throw std::runtime_error("MetricsSink::write: write failed for " + path);
}

}  // namespace realm::obs
