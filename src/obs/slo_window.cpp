#include "realm/obs/slo_window.hpp"

#include "realm/obs/counters.hpp"
#include "realm/obs/trace.hpp"

namespace realm::obs {

namespace {

constexpr std::uint64_t kNsPerSec = 1'000'000'000ull;

static_assert((kSloRingSeconds & (kSloRingSeconds - 1)) == 0,
              "ring length must be a power of two (index = second & mask)");
static_assert(kSloRingSeconds > kSloWindowsSeconds.back() + 1,
              "ring must out-span the largest reported window plus the "
              "current partial second");

}  // namespace

SloWindow::SloWindow() : ring_(kSloRingSeconds) {}

bool SloWindow::rotate(Bucket& b, std::uint64_t sec) noexcept {
  // Ticket: the first writer of second `sec` to move `claim` forward owns
  // the reset; everyone else waits for the matching epoch publish.  claim
  // only ever moves forward, so a stale second can never un-reset a bucket.
  std::uint64_t claimed = b.claim.load(std::memory_order_relaxed);
  for (;;) {
    if (claimed != kEmptyEpoch && claimed >= sec) break;  // someone newer owns it
    if (b.claim.compare_exchange_weak(claimed, sec, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      b.count.store(0, std::memory_order_relaxed);
      b.errors.store(0, std::memory_order_relaxed);
      b.warm_hits.store(0, std::memory_order_relaxed);
      b.bytes.store(0, std::memory_order_relaxed);
      b.latency.reset();
      b.epoch.store(sec, std::memory_order_release);
      counter_add(Counter::kSloRotations, 1);
      return true;
    }
  }
  // Lost the ticket.  If the winner is rotating to our second, spin for the
  // publish (sub-microsecond: the winner only zeroes a cache line or two).
  // If the bucket already belongs to a newer second our record is stale —
  // drop it rather than pollute the newer bucket.
  if (claimed != sec) return false;
  while (b.epoch.load(std::memory_order_acquire) != sec) {
  }
  return true;
}

void SloWindow::record_at(std::uint64_t now_ns, std::uint64_t latency_ns,
                          std::uint64_t bytes, bool error, bool warm) noexcept {
  const std::uint64_t sec = now_ns / kNsPerSec;
  Bucket& b = ring_[static_cast<std::size_t>(sec & (kSloRingSeconds - 1))];
  const std::uint64_t epoch = b.epoch.load(std::memory_order_acquire);
  if (epoch != sec) {
    if (epoch != kEmptyEpoch && epoch > sec) return;  // bucket moved on; drop
    if (!rotate(b, sec)) return;
  }
  b.count.fetch_add(1, std::memory_order_relaxed);
  if (error) b.errors.fetch_add(1, std::memory_order_relaxed);
  if (warm) b.warm_hits.fetch_add(1, std::memory_order_relaxed);
  b.bytes.fetch_add(bytes, std::memory_order_relaxed);
  b.latency.record(latency_ns);
  counter_add(Counter::kSloRecords, 1);
}

void SloWindow::record(std::uint64_t latency_ns, std::uint64_t bytes, bool error,
                       bool warm) noexcept {
  record_at(now_ns(), latency_ns, bytes, error, warm);
}

SloSnapshot SloWindow::snapshot_at(std::uint64_t now_ns,
                                   unsigned window_s) const noexcept {
  SloSnapshot out;
  if (window_s == 0) return out;
  if (window_s >= kSloRingSeconds) window_s = kSloRingSeconds - 1;
  const std::uint64_t now_sec = now_ns / kNsPerSec;
  // Window [now_sec - window_s + 1, now_sec]: the current partial second
  // plus the window_s - 1 full seconds before it.
  const std::uint64_t first =
      now_sec >= window_s - 1 ? now_sec - (window_s - 1) : 0;
  for (std::uint64_t sec = first; sec <= now_sec; ++sec) {
    const Bucket& b = ring_[static_cast<std::size_t>(sec & (kSloRingSeconds - 1))];
    // The epoch stamp filters both never-used buckets and buckets last
    // written > ring-length seconds ago (their stamp names an older second).
    if (b.epoch.load(std::memory_order_acquire) != sec) continue;
    out.count += b.count.load(std::memory_order_relaxed);
    out.errors += b.errors.load(std::memory_order_relaxed);
    out.warm_hits += b.warm_hits.load(std::memory_order_relaxed);
    out.bytes += b.bytes.load(std::memory_order_relaxed);
    out.latency.merge(b.latency.snapshot());
  }
  return out;
}

SloSnapshot SloWindow::snapshot(unsigned window_s) const noexcept {
  return snapshot_at(now_ns(), window_s);
}

}  // namespace realm::obs
