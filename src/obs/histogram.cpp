#include "realm/obs/histogram.hpp"

#include <cmath>

namespace realm::obs {

namespace detail {

AtomicHistogram g_value_hists[kValueHistCount];

}  // namespace detail

std::uint64_t HistogramSnapshot::percentile(double q) const noexcept {
  if (count == 0) return 0;
  if (q <= 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the k-th smallest sample, k = ceil(q * count), k >= 1.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  const std::uint64_t k = rank == 0 ? 1 : rank;
  std::uint64_t seen = 0;
  for (unsigned i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= k) {
      // The k-th smallest lies in bucket i; its inclusive upper edge
      // (clamped into the exactly-tracked [min, max]) upper-bounds it
      // within one log2 bucket.
      std::uint64_t est = histogram_bucket_upper(i);
      if (est > max) est = max;  // max shares the sample's bucket or a later one
      return est;
    }
  }
  return max;  // unreachable when bucket counts are consistent with count
}

const char* value_hist_name(ValueHist h) noexcept {
  switch (h) {
    case ValueHist::kPoolQueueWaitNs: return "pool_queue_wait_ns";
    case ValueHist::kStoreRecordBytes: return "store_record_bytes";
    case ValueHist::kCount: break;
  }
  return "unknown";
}

void value_hist_reset() noexcept {
  for (auto& h : detail::g_value_hists) h.reset();
}

}  // namespace realm::obs
